// Multi-cell topology layer: shard_group lockstep windows and mailbox
// determinism, mobility-model planning, X2/Xn handover state migration
// (in-flight RLC SDUs and L4Span marking state), and jobs-independence of
// the sharded run (byte-identical metric streams for --jobs 1 vs 4).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/l4span.h"
#include "ran/rlc.h"
#include "scenario/topology.h"
#include "sim/shard_group.h"
#include "topo/mobility_model.h"

using namespace l4span;

// --- sim::shard_group -------------------------------------------------------

TEST(shard_group, windows_advance_all_loops)
{
    sim::shard_group g(3, sim::from_ms(1), 1);
    int fired = 0;
    for (std::size_t s = 0; s < g.size(); ++s)
        g.loop(s).schedule_at(sim::from_ms(5), [&fired] { ++fired; });
    g.run_until(sim::from_ms(10));
    EXPECT_EQ(fired, 3);
    for (std::size_t s = 0; s < g.size(); ++s)
        EXPECT_EQ(g.loop(s).now(), sim::from_ms(10));
    EXPECT_EQ(g.processed(), 3u);
}

TEST(shard_group, cross_shard_post_delivers_at_requested_time)
{
    sim::shard_group g(2, sim::from_ms(1), 1);
    std::vector<sim::tick> arrivals;
    // Shard 0 pings shard 1 with one-quantum latency; shard 1 pongs back.
    g.loop(0).schedule_at(sim::from_ms(2), [&] {
        g.post(1, sim::from_ms(3), [&] {
            arrivals.push_back(g.loop(1).now());
            g.post(0, sim::from_ms(4), [&] { arrivals.push_back(g.loop(0).now()); });
        });
    });
    g.run_until(sim::from_ms(10));
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], sim::from_ms(3));
    EXPECT_EQ(arrivals[1], sim::from_ms(4));
}

TEST(shard_group, worker_count_does_not_change_event_interleaving)
{
    // A deterministic cross-shard traffic pattern; the per-shard sequence of
    // (time, value) observations must be identical for 1 and 4 workers.
    auto run = [](int jobs) {
        sim::shard_group g(4, sim::from_ms(1), jobs);
        std::vector<std::vector<std::pair<sim::tick, int>>> seen(4);
        for (std::size_t s = 0; s < 4; ++s) {
            for (int k = 1; k <= 50; ++k) {
                g.loop(s).schedule_at(sim::from_ms(k), [&g, &seen, s, k] {
                    seen[s].emplace_back(g.loop(s).now(), k);
                    const std::size_t peer = (s + static_cast<std::size_t>(k)) % 4;
                    if (peer != s)
                        g.post(peer, g.loop(s).now() + sim::from_ms(1),
                               [&g, &seen, peer, k] {
                                   seen[peer].emplace_back(g.loop(peer).now(), 1000 + k);
                               });
                });
            }
        }
        g.run_until(sim::from_ms(60));
        return seen;
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(serial[s], parallel[s]) << "shard " << s;
}

TEST(shard_group, late_message_is_rejected)
{
    sim::shard_group g(2, sim::from_ms(5), 1);
    // Posted with sub-quantum latency: lands in the past of the target's
    // completed window and must throw, not silently reorder.
    g.loop(0).schedule_at(sim::from_ms(7), [&] {
        g.post(1, sim::from_ms(7) + sim::from_us(100), [] {});
    });
    EXPECT_THROW(g.run_until(sim::from_ms(20)), std::logic_error);
}

TEST(shard_group, late_message_stops_parallel_run_without_rescheduling)
{
    sim::shard_group g(2, sim::from_ms(5), 2);
    std::atomic<int> good_fired{0};
    g.loop(0).schedule_at(sim::from_ms(7), [&] {
        // One valid message followed by one late one in the same lane: the
        // valid one must fire exactly once (no re-drain of a moved-from
        // callback), the late one must surface as the error after the
        // workers wind down their current window.
        g.post(1, sim::from_ms(13), [&] { good_fired.fetch_add(1); });
        g.post(1, sim::from_ms(7) + sim::from_us(100), [] {});
    });
    EXPECT_THROW(g.run_until(sim::from_ms(1000)), std::logic_error);
    EXPECT_LE(good_fired.load(), 1);
}

// --- topo::mobility_model ---------------------------------------------------

TEST(mobility_model, schedule_is_deterministic_and_well_formed)
{
    topo::mobility_config cfg;
    cfg.num_cells = 4;
    cfg.ues_per_cell = 8;
    cfg.handovers_per_ue_per_sec = 1.0;
    cfg.start = sim::from_ms(500);
    cfg.end = sim::from_sec(10);
    cfg.seed = 42;
    const topo::mobility_model a(cfg);
    const topo::mobility_model b(cfg);
    ASSERT_FALSE(a.schedule().empty());
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    sim::tick prev = 0;
    for (std::size_t i = 0; i < a.schedule().size(); ++i) {
        const auto& ev = a.schedule()[i];
        EXPECT_EQ(ev.when, b.schedule()[i].when);
        EXPECT_EQ(ev.ue, b.schedule()[i].ue);
        EXPECT_EQ(ev.target_cell, b.schedule()[i].target_cell);
        EXPECT_GE(ev.when, cfg.start);
        EXPECT_LT(ev.when, cfg.end);
        EXPECT_GE(ev.when, prev);  // sorted
        prev = ev.when;
        EXPECT_GE(ev.ue, 0);
        EXPECT_LT(ev.ue, cfg.num_cells * cfg.ues_per_cell);
        EXPECT_GE(ev.target_cell, 0);
        EXPECT_LT(ev.target_cell, cfg.num_cells);
    }
    // ~ rate * ues * horizon events, within loose bounds.
    const double expect = 1.0 * 32 * 9.5;
    EXPECT_GT(static_cast<double>(a.schedule().size()), expect * 0.5);
    EXPECT_LT(static_cast<double>(a.schedule().size()), expect * 1.5);
}

TEST(mobility_model, single_cell_or_zero_rate_means_no_handovers)
{
    topo::mobility_config cfg;
    cfg.num_cells = 1;
    cfg.end = sim::from_sec(10);
    EXPECT_TRUE(topo::mobility_model(cfg).schedule().empty());
    cfg.num_cells = 4;
    cfg.handovers_per_ue_per_sec = 0.0;
    EXPECT_TRUE(topo::mobility_model(cfg).schedule().empty());
}

// --- rlc handover context ---------------------------------------------------

namespace {

ran::pdcp_sdu mk_sdu(ran::pdcp_sn_t sn, std::uint32_t size)
{
    ran::pdcp_sdu s;
    s.sn = sn;
    s.size = size;
    // No transport header on these synthetic packets, so size_bytes() (IP
    // header + payload) matches `size` exactly — the export path recomputes
    // SDU sizes from the packet.
    s.pkt.payload_bytes = size > 20 ? size - 20 : 0;
    s.pkt.pkt_id = sn;
    return s;
}

}  // namespace

TEST(rlc_handover, export_carries_unacked_and_fresh_sdus_in_sn_order)
{
    ran::rlc_config cfg;
    cfg.mode = ran::rlc_mode::am;
    net::packet_pool pool;
    ran::rlc_tx src(1, 1, cfg, pool);
    for (ran::pdcp_sn_t sn = 1; sn <= 6; ++sn) src.enqueue(mk_sdu(sn, 1000), 0);
    // Fully transmit SDUs 1-2 (now awaiting delivery), confirm SDU 1,
    // partially transmit SDU 3, leave 4-6 fresh.
    (void)src.pull(2000, 1);
    src.on_delivery_confirmed(1, 2);
    (void)src.pull(500, 3);

    auto ctx = src.export_context();
    EXPECT_EQ(src.backlog_bytes(), 0u);
    EXPECT_EQ(ctx.delivered_watermark, 1u);
    ASSERT_EQ(ctx.forwarded.size(), 5u);  // 2 (unacked) + 3..6 minus delivered 1
    for (std::size_t i = 0; i < ctx.forwarded.size(); ++i)
        EXPECT_EQ(ctx.forwarded[i].sn, i + 2);  // SNs 2,3,4,5,6 in order

    net::packet_pool pool2;
    ran::rlc_tx dst(2, 1, cfg, pool2);
    dst.restore(std::move(ctx), sim::from_ms(50));
    EXPECT_EQ(dst.queued_sdus(), 5u);
    EXPECT_EQ(dst.backlog_bytes(), 5000u);  // partial send of SN 3 re-sent whole
    EXPECT_EQ(dst.highest_delivered(), 1u);
    // The target re-transmits from SN 2 up; watermarks stay monotone.
    const auto chunks = dst.pull(10000, sim::from_ms(51));
    ASSERT_FALSE(chunks.empty());
    EXPECT_EQ(chunks.front().sn, 2u);
    EXPECT_EQ(dst.highest_transmitted(), 6u);
}

TEST(rlc_handover, rx_context_preserves_inorder_point_and_skips)
{
    net::packet_pool pool;
    ran::rlc_rx src(ran::rlc_mode::am, pool);
    std::vector<ran::pdcp_sn_t> delivered;
    src.set_deliver_handler([&](net::packet p, sim::tick) {
        delivered.push_back(static_cast<ran::pdcp_sn_t>(p.pkt_id));
    });
    // Deliver SNs 1-3 in order, skip 4 (DU discard), leave a partial at 6.
    for (ran::pdcp_sn_t sn = 1; sn <= 3; ++sn) {
        ran::tb_chunk c;
        c.sn = sn;
        c.bytes = 100;
        c.sdu_total = 100;
        c.carries_last = true;
        c.pkt = pool.put(mk_sdu(sn, 100).pkt);
        src.on_chunk(c, 0);
    }
    src.skip(4, 1);
    ran::tb_chunk partial;
    partial.sn = 6;
    partial.bytes = 40;
    partial.sdu_total = 100;
    src.on_chunk(partial, 2);
    EXPECT_EQ(delivered.size(), 3u);

    auto ctx = src.export_context();
    EXPECT_EQ(ctx.next_expected, 5u);  // 1-3 delivered, 4 skipped
    EXPECT_TRUE(ctx.skipped.empty());  // 4 was consumed by the skip

    net::packet_pool pool2;
    ran::rlc_rx dst(ran::rlc_mode::am, pool2);
    std::vector<ran::pdcp_sn_t> delivered2;
    dst.set_deliver_handler([&](net::packet p, sim::tick) {
        delivered2.push_back(static_cast<ran::pdcp_sn_t>(p.pkt_id));
    });
    dst.restore(ctx);
    // The target re-sends 5 and 6 whole (they were unacknowledged).
    for (ran::pdcp_sn_t sn = 5; sn <= 6; ++sn) {
        ran::tb_chunk c;
        c.sn = sn;
        c.bytes = 100;
        c.sdu_total = 100;
        c.carries_last = true;
        c.pkt = pool2.put(mk_sdu(sn, 100).pkt);
        dst.on_chunk(c, 10);
    }
    EXPECT_EQ(delivered2, (std::vector<ran::pdcp_sn_t>{5, 6}));
    // A duplicate below the in-order point is ignored.
    ran::tb_chunk dup;
    dup.sn = 2;
    dup.bytes = 100;
    dup.sdu_total = 100;
    dup.carries_last = true;
    dup.pkt = pool2.put(mk_sdu(2, 100).pkt);
    dst.on_chunk(dup, 11);
    EXPECT_EQ(delivered2.size(), 2u);
}

// --- core::l4span state migration -------------------------------------------

TEST(l4span_handover, drb_and_flow_state_rekeyed_to_new_rnti)
{
    core::l4span_config cfg;
    core::l4span ent(cfg);
    net::packet pkt;
    pkt.ft.src_ip = 1;
    pkt.ft.dst_ip = 2;
    pkt.ft.src_port = 443;
    pkt.ft.dst_port = 5000;
    pkt.ecn_field = net::ecn::ect1;
    pkt.payload_bytes = 1400;
    for (ran::pdcp_sn_t sn = 1; sn <= 20; ++sn)
        ent.on_dl_packet(pkt, /*ue=*/3, /*drb=*/1, sn, sim::from_ms(sn));
    ran::dl_delivery_status st;
    st.ue = 3;
    st.drb = 1;
    st.highest_transmitted_sn = 10;
    st.has_transmitted = true;
    st.timestamp = sim::from_ms(21);
    ent.on_delivery_status(st, sim::from_ms(21));

    const auto before = ent.view(3, 1);
    EXPECT_GT(before.standing_bytes, 0u);
    EXPECT_TRUE(before.has_l4s);

    auto state = ent.detach_ue(3);
    ASSERT_NE(state, nullptr);
    EXPECT_EQ(ent.view(3, 1).standing_bytes, 0u);  // gone from the source

    core::l4span target(cfg);
    target.attach_ue(9, std::move(state));
    const auto after = target.view(9, 1);
    EXPECT_EQ(after.standing_bytes, before.standing_bytes);
    EXPECT_EQ(after.rate_hat_Bps, before.rate_hat_Bps);
    EXPECT_TRUE(after.has_l4s);

    // The migrated flow keeps feeding the same DRB state under the new RNTI.
    target.on_dl_packet(pkt, 9, 1, 21, sim::from_ms(30));
    EXPECT_GT(target.view(9, 1).standing_bytes, after.standing_bytes);
}

// --- scenario::topology: handover correctness -------------------------------

namespace {

scenario::topology_spec two_cell_spec(scenario::cu_mode cu, int jobs = 1)
{
    scenario::topology_spec spec;
    spec.num_cells = 2;
    spec.ues_per_cell = 1;
    spec.cell.cu = cu;
    spec.cell.channel = "static";
    spec.cell.seed = 5;
    spec.jobs = jobs;
    return spec;
}

}  // namespace

TEST(topology, handover_preserves_inflight_rlc_sdus)
{
    // A deep-queue CUBIC download (vanilla RAN, no signaling) guarantees a
    // large standing RLC queue at handover time. AM forwarding must carry
    // it: the flow keeps delivering with zero TCP-level retransmissions.
    auto spec = two_cell_spec(scenario::cu_mode::none);
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.cca = "cubic";
    f.ue = 0;
    f.max_cwnd = 1536 * 1024;
    const int h = topo.add_flow(f);
    topo.schedule_handover(sim::from_ms(1500), 0, 1);
    topo.run(sim::from_sec(3));

    EXPECT_EQ(topo.handovers_started(), 1u);
    EXPECT_EQ(topo.handovers_completed(), 1u);
    EXPECT_EQ(topo.serving_cell(0), 1);
    EXPECT_FALSE(topo.cell_at(0).has_ue(1));  // detached from the source
    EXPECT_TRUE(topo.cell_at(1).has_ue(topo.ue_rnti(0)));
    // Nothing the source admitted was lost end-to-end.
    EXPECT_EQ(topo.flow_retransmits(h), 0u);
    EXPECT_GT(topo.delivered_bytes(h), 2u << 20);
    // The target's RLC actually transmitted forwarded + new data.
    const auto& tgt_rlc = topo.cell_at(1).gnb().rlc(topo.ue_rnti(0), 1);
    EXPECT_GT(tgt_rlc.total_txed_bytes(), 0u);
    // Delivery kept flowing after the handover completed.
    EXPECT_GT(topo.goodput_series(h).mbps_at(sim::from_ms(2500)), 1.0);
}

TEST(topology, handover_migrates_l4span_marking_state_without_ce_burst)
{
    auto spec = two_cell_spec(scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.cca = "prague";
    f.ue = 0;
    const int h = topo.add_flow(f);
    const sim::tick ho_at = sim::from_ms(2000);
    topo.schedule_handover(ho_at, 0, 1);
    topo.run(sim::from_sec(4));
    ASSERT_EQ(topo.handovers_completed(), 1u);

    core::l4span* src = topo.cell_at(0).l4span_layer();
    core::l4span* tgt = topo.cell_at(1).l4span_layer();
    ASSERT_NE(src, nullptr);
    ASSERT_NE(tgt, nullptr);
    // The signal stayed alive across the move: the source marked before the
    // handover, the target after (its estimator arrived pre-warmed).
    EXPECT_GT(src->marks(), 0u);
    EXPECT_GT(tgt->marks(), 0u);
    // No spurious CE burst: the target's marking rate stays within a small
    // factor of the source's steady-state rate (a fresh entity would first
    // under-mark, overshoot, then burst against the re-learned queue).
    const double src_rate = static_cast<double>(src->marks()) / sim::to_sec(ho_at);
    const double tgt_rate = static_cast<double>(tgt->marks()) /
                            sim::to_sec(sim::from_sec(4) - ho_at);
    EXPECT_LT(tgt_rate, 3.0 * src_rate + 5.0);
    // And the flow's delay stays in the L4Span operating regime after the
    // handover: Prague would sit at seconds of OWD without working marks.
    EXPECT_LT(topo.owd_ms(h).percentile(90), 200.0);
    EXPECT_GT(topo.goodput_mbps(h), 5.0);
}

TEST(topology, handover_to_serving_cell_is_skipped)
{
    auto spec = two_cell_spec(scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.ue = 0;
    topo.add_flow(f);
    topo.schedule_handover(sim::from_ms(800), 0, 0);  // already serving
    topo.run(sim::from_sec(1));
    EXPECT_EQ(topo.handovers_started(), 0u);
    EXPECT_EQ(topo.handovers_completed(), 0u);
    EXPECT_EQ(topo.serving_cell(0), 0);
}

TEST(topology, invalid_inputs_rejected)
{
    auto spec = two_cell_spec(scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    scenario::flow_spec bad_ue;
    bad_ue.ue = 7;
    EXPECT_THROW(topo.add_flow(bad_ue), std::out_of_range);
    scenario::flow_spec bad_owd;
    bad_owd.ue = 0;
    bad_owd.wired_owd_ms = 0.1;  // below the sync quantum
    EXPECT_THROW(topo.add_flow(bad_owd), std::invalid_argument);
    EXPECT_THROW(topo.schedule_handover(0, 99, 1), std::out_of_range);
    EXPECT_THROW(topo.schedule_handover(0, 0, 9), std::out_of_range);

    scenario::topology_spec bad_lat = two_cell_spec(scenario::cu_mode::none);
    bad_lat.ue_stack_latency = sim::from_us(100);  // below one MAC slot
    EXPECT_THROW(scenario::topology{bad_lat}, std::invalid_argument);
}

// --- scenario::topology: sharded determinism --------------------------------

namespace {

struct topo_metrics {
    std::vector<double> owd;
    std::vector<double> rtt;
    std::vector<std::uint64_t> delivered;
    std::uint64_t handovers = 0;
    std::uint64_t events = 0;

    bool operator==(const topo_metrics&) const = default;
};

topo_metrics run_sharded(int jobs)
{
    scenario::topology_spec spec;
    spec.num_cells = 4;
    spec.ues_per_cell = 2;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "mobile";
    spec.cell.seed = 11;
    spec.jobs = jobs;
    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int ue = 0; ue < topo.num_ues(); ++ue) {
        scenario::flow_spec f;
        f.cca = ue % 2 ? "cubic" : "prague";
        f.ue = ue;
        handles.push_back(topo.add_flow(f));
    }
    topo::mobility_config mob;
    mob.num_cells = 4;
    mob.ues_per_cell = 2;
    mob.handovers_per_ue_per_sec = 1.0;
    mob.start = sim::from_ms(400);
    mob.end = sim::from_ms(1800);
    mob.seed = 3;
    topo.apply(topo::mobility_model(mob).schedule());
    topo.run(sim::from_sec(2));

    topo_metrics m;
    for (const int h : handles) {
        for (double v : topo.owd_ms(h).raw()) m.owd.push_back(v);
        for (double v : topo.rtt_ms(h).raw()) m.rtt.push_back(v);
        m.delivered.push_back(topo.delivered_bytes(h));
    }
    m.handovers = topo.handovers_completed();
    m.events = topo.processed_events();
    return m;
}

}  // namespace

TEST(topology, sharded_run_is_byte_identical_for_any_worker_count)
{
    const topo_metrics serial = run_sharded(1);
    const topo_metrics parallel = run_sharded(4);
    EXPECT_GT(serial.handovers, 0u);
    EXPECT_FALSE(serial.owd.empty());
    EXPECT_EQ(serial, parallel);
}
