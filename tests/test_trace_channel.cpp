// Trace-driven channel subsystem: replay semantics of chan::trace_channel,
// actionable configuration errors, the committed example traces, the
// record→replay bit-identity contract (including across an X2/Xn handover,
// proving the trace cursor migrates with the UE), and jobs-independence of
// trace-driven sharded topology runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chan/fading.h"
#include "chan/trace_channel.h"
#include "chan/trace_io.h"
#include "core/l4span.h"
#include "scenario/cell.h"
#include "scenario/topology.h"
#include "sim/event_loop.h"
#include "topo/mobility_model.h"

using namespace l4span;
using namespace l4span::chan;

namespace {

std::shared_ptr<const trace_data> tiny_trace(sim::tick duration = sim::from_ms(30))
{
    auto t = std::make_shared<trace_data>();
    t->name = "tiny";
    t->records = {
        {0, 10, 20, 1000},
        {sim::from_ms(10), 12, 30, 1500},
        {sim::from_ms(20), 5, 40, 500},
    };
    t->duration = duration;
    return t;
}

trace_config tiny_config()
{
    trace_config cfg;
    cfg.data = tiny_trace();
    return cfg;
}

}  // namespace

// --- replay semantics -------------------------------------------------------

TEST(trace_channel, step_function_and_loop)
{
    trace_channel ch(tiny_config());
    EXPECT_EQ(ch.mcs(0), 10);
    EXPECT_EQ(ch.mcs(sim::from_ms(5)), 10);
    EXPECT_EQ(ch.mcs(sim::from_ms(10)), 12);
    EXPECT_EQ(ch.mcs(sim::from_ms(19)), 12);
    EXPECT_EQ(ch.mcs(sim::from_ms(20)), 5);
    EXPECT_EQ(ch.mcs(sim::from_ms(29)), 5);
    // Wraps at duration (30 ms) and keeps wrapping.
    EXPECT_EQ(ch.mcs(sim::from_ms(30)), 10);
    EXPECT_EQ(ch.mcs(sim::from_ms(45)), 12);
    EXPECT_EQ(ch.mcs(sim::from_ms(80)), 5);
}

TEST(trace_channel, no_loop_holds_last_record)
{
    trace_config cfg = tiny_config();
    cfg.loop = false;
    trace_channel ch(cfg);
    EXPECT_EQ(ch.mcs(sim::from_ms(45)), 5);
    EXPECT_EQ(ch.mcs(sim::from_sec(10)), 5);
}

TEST(trace_channel, offset_and_time_scale)
{
    trace_config shifted = tiny_config();
    shifted.offset = sim::from_ms(10);
    trace_channel ch1(shifted);
    EXPECT_EQ(ch1.mcs(0), 12);  // starts 10 ms into the trace

    trace_config fast = tiny_config();
    fast.time_scale = 2.0;
    trace_channel ch2(fast);
    EXPECT_EQ(ch2.mcs(sim::from_ms(5)), 12);   // trace time 10 ms
    EXPECT_EQ(ch2.mcs(sim::from_ms(11)), 5);   // trace time 22 ms
}

TEST(trace_channel, earlier_time_does_not_rewind)
{
    trace_channel ch(tiny_config());
    EXPECT_EQ(ch.mcs(sim::from_ms(25)), 5);
    EXPECT_EQ(ch.mcs(sim::from_ms(1)), 5);  // no rewind, holds current record
}

TEST(trace_channel, prb_cap_and_snr_follow_the_records)
{
    trace_channel ch(tiny_config());
    EXPECT_EQ(ch.prb_cap(0), 20);
    EXPECT_EQ(ch.prb_cap(sim::from_ms(10)), 30);
    // The representative SNR re-derives the replayed MCS.
    trace_channel ch2(tiny_config());
    for (sim::tick t = 0; t < sim::from_ms(30); t += sim::from_ms(1))
        EXPECT_EQ(mcs_from_snr(ch2.snr_db(t)), ch2.mcs(t));
    // A fading channel caps nothing and is re-drawn at handover; a trace
    // migrates.
    fading_channel fad(channel_profile::vehicular(), sim::rng(1));
    EXPECT_EQ(fad.prb_cap(0), -1);
    EXPECT_FALSE(fad.migrates_on_handover());
    EXPECT_TRUE(ch.migrates_on_handover());
}

TEST(trace_channel, synth_trace_is_deterministic)
{
    synth_trace_spec spec;
    spec.seed = 99;
    spec.slots = 500;
    const trace_data a = synth_trace(spec);
    const trace_data b = synth_trace(spec);
    EXPECT_EQ(a.records, b.records);
    ASSERT_EQ(a.records.size(), 500u);
    EXPECT_EQ(a.duration, 500 * spec.slot);
    spec.seed = 100;
    EXPECT_NE(synth_trace(spec).records, a.records);
}

// --- actionable configuration errors ----------------------------------------

namespace {

std::string thrown_message(const std::function<void()>& fn)
{
    try {
        fn();
    } catch (const std::exception& e) {
        return e.what();
    }
    return "";
}

}  // namespace

TEST(trace_channel, config_errors_are_actionable)
{
    trace_config null_data;
    std::string msg = thrown_message([&] { trace_channel ch(null_data); });
    EXPECT_NE(msg.find("load_trace_file"), std::string::npos) << msg;

    trace_config empty;
    empty.data = std::make_shared<trace_data>();
    msg = thrown_message([&] { trace_channel ch(empty); });
    EXPECT_NE(msg.find("zero-length"), std::string::npos) << msg;

    trace_config bad_scale = tiny_config();
    bad_scale.time_scale = 0.0;
    msg = thrown_message([&] { trace_channel ch(bad_scale); });
    EXPECT_NE(msg.find("time_scale"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1.0 = real time"), std::string::npos) << msg;

    trace_config bad_duration = tiny_config();
    auto short_dur = std::make_shared<trace_data>(*bad_duration.data);
    short_dur->duration = short_dur->records.back().timestamp;  // not past the end
    bad_duration.data = short_dur;
    msg = thrown_message([&] { trace_channel ch(bad_duration); });
    EXPECT_NE(msg.find("duration"), std::string::npos) << msg;
}

TEST(trace_channel, unknown_trace_path_names_path_and_formats)
{
    const std::string msg = thrown_message(
        [] { load_trace_file("/no/such/dir/missing_trace.csv"); });
    EXPECT_NE(msg.find("/no/such/dir/missing_trace.csv"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gen_traces.py"), std::string::npos) << msg;
}

TEST(trace_channel, cell_requires_trace_assignments)
{
    sim::event_loop loop;
    scenario::cell_spec cs;
    cs.channel = "trace";  // but no ue_traces
    const std::string msg =
        thrown_message([&] { scenario::cell c(loop, cs); });
    EXPECT_NE(msg.find("ue_traces"), std::string::npos) << msg;
    EXPECT_NE(msg.find("synth_trace"), std::string::npos) << msg;

    // channel_by_name: "trace" is data, not a profile; unknowns list options.
    const std::string trace_msg =
        thrown_message([] { scenario::channel_by_name("trace"); });
    EXPECT_NE(trace_msg.find("ue_traces"), std::string::npos) << trace_msg;
    const std::string unknown_msg =
        thrown_message([] { scenario::channel_by_name("warp"); });
    EXPECT_NE(unknown_msg.find("static, pedestrian, vehicular, mobile, trace"),
              std::string::npos)
        << unknown_msg;
}

// --- committed example traces -----------------------------------------------

TEST(trace_channel, committed_example_traces_load_and_replay)
{
    for (const char* file : {"nr_scope_fdd600_downtown.csv",
                             "nr_scope_tdd2500_driving.csv",
                             "synthetic_squarewave.csv"}) {
        const auto t = load_trace_file(std::string(L4SPAN_SOURCE_ROOT) +
                                       "/traces/" + file);
        EXPECT_EQ(t->records.size(), 4000u) << file;
        EXPECT_EQ(t->duration, sim::from_sec(4)) << file;
        trace_config cfg;
        cfg.data = t;
        trace_channel ch(cfg);
        int distinct_lo = 99, distinct_hi = -2;
        for (sim::tick at = 0; at < sim::from_sec(8); at += sim::from_ms(1)) {
            const int m = ch.mcs(at);
            distinct_lo = std::min(distinct_lo, m);
            distinct_hi = std::max(distinct_hi, m);
        }
        EXPECT_GE(distinct_lo, 0) << file;
        EXPECT_GT(distinct_hi, distinct_lo) << file;  // real capacity variation
    }
}

// --- record → replay bit-identity -------------------------------------------

namespace {

struct linklog_entry {
    int cell = 0;
    ran::rnti_t rnti = 0;
    sim::tick when = 0;
    int mcs = 0;
    int prbs = 0;
    std::uint32_t bytes = 0;

    bool operator==(const linklog_entry&) const = default;
};

struct run_capture {
    std::vector<linklog_entry> linklog;
    std::vector<double> owd;
    std::vector<double> rtt;
    std::uint64_t delivered = 0;
    std::uint64_t events = 0;
    std::uint64_t handovers = 0;

    bool operator==(const run_capture&) const = default;
};

// One-UE topology run (optionally with a mid-run handover between two
// cells); `spec_channel`/`traces` select fading vs replay. jobs=1 so a
// single recorder can observe both cells.
run_capture run_one(int cells, const std::string& channel,
                    std::vector<trace_config> traces, bool handover,
                    sim::tick duration)
{
    scenario::topology_spec spec;
    spec.num_cells = cells;
    spec.ues_per_cell = 1;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = channel;
    spec.cell.ue_traces = std::move(traces);
    spec.cell.seed = 17;
    spec.jobs = 1;
    scenario::topology topo(spec);

    run_capture cap;
    for (int c = 0; c < cells; ++c) {
        topo.cell_at(c).set_linklog_handler(
            [&cap, c](ran::rnti_t rnti, sim::tick now, int mcs, int prbs,
                      std::uint32_t bytes) {
                cap.linklog.push_back({c, rnti, now, mcs, prbs, bytes});
            });
    }

    scenario::flow_spec f;
    f.cca = "prague";
    f.ue = 0;
    const int h = topo.add_flow(f);
    if (handover) topo.schedule_handover(duration / 2, 0, 1);
    topo.run(duration);

    for (double v : topo.owd_ms(h).raw()) cap.owd.push_back(v);
    for (double v : topo.rtt_ms(h).raw()) cap.rtt.push_back(v);
    cap.delivered = topo.delivered_bytes(h);
    cap.events = topo.processed_events();
    cap.handovers = topo.handovers_completed();
    return cap;
}

// Stitches the recorded per-slot DCI stream of the flow-carrying UE into
// one trace (entries for other UEs never occur: they carry no traffic).
std::shared_ptr<const trace_data> stitch_trace(const run_capture& cap)
{
    auto t = std::make_shared<trace_data>();
    t->name = "recorded";
    for (const auto& e : cap.linklog)
        t->records.push_back({e.when, e.mcs, e.prbs, e.bytes});
    return t;
}

}  // namespace

TEST(trace_replay_golden, fading_run_replays_bit_identically)
{
    const sim::tick duration = sim::from_sec(2);
    const run_capture recorded =
        run_one(1, "vehicular", {}, /*handover=*/false, duration);
    ASSERT_GT(recorded.linklog.size(), 1000u);
    ASSERT_GT(recorded.delivered, 1u << 20);

    // Round-trip the recording through the CSV codec on disk, like a real
    // NR-Scope capture would arrive (slot timestamps are exact in us).
    const std::string path = ::testing::TempDir() + "/recorded_fading.csv";
    ASSERT_TRUE(save_trace_csv(path, *stitch_trace(recorded)));
    trace_config cfg;
    cfg.data = load_trace_file(path);
    cfg.loop = false;
    ASSERT_EQ(cfg.data->records.size(), recorded.linklog.size());

    const run_capture replayed = run_one(1, "trace", {cfg}, false, duration);
    // The full per-slot MCS/PRB/TBS stream and every end-to-end flow metric
    // are bit-identical to the recorded run.
    EXPECT_EQ(replayed, recorded);
}

TEST(trace_replay_golden, cursor_survives_x2_handover)
{
    const sim::tick duration = sim::from_sec(2);
    const run_capture recorded =
        run_one(2, "vehicular", {}, /*handover=*/true, duration);
    ASSERT_EQ(recorded.handovers, 1u);
    ASSERT_GT(recorded.linklog.size(), 1000u);
    // The UE logged from both cells: before the handover as cell 0's RNTI,
    // after it under the fresh RNTI the target assigned.
    EXPECT_TRUE(std::any_of(recorded.linklog.begin(), recorded.linklog.end(),
                            [](const linklog_entry& e) { return e.cell == 1; }));

    trace_config cfg;
    cfg.data = stitch_trace(recorded);
    cfg.loop = false;
    const run_capture replayed = run_one(2, "trace", {cfg}, true, duration);
    // Bit-identity across detach_ue/attach_ue proves the replay cursor
    // migrated with the UE instead of restarting at the target cell.
    EXPECT_EQ(replayed, recorded);
}

// --- sharded determinism over traces ----------------------------------------

namespace {

run_capture run_sharded_traces(int jobs)
{
    synth_trace_spec fast;
    fast.name = "fast";
    fast.seed = 5;
    fast.slots = 3000;
    fast.slot = sim::from_ms(1);
    fast.coherence = sim::from_ms(34);
    synth_trace_spec slow = fast;
    slow.name = "slow";
    slow.seed = 6;
    slow.coherence = sim::from_ms(140);

    trace_config a;
    a.data = std::make_shared<const trace_data>(synth_trace(fast));
    trace_config b;
    b.data = std::make_shared<const trace_data>(synth_trace(slow));
    b.offset = sim::from_ms(700);

    scenario::topology_spec spec;
    spec.num_cells = 2;
    spec.ues_per_cell = 2;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "trace";
    spec.cell.ue_traces = {a, b};
    spec.cell.seed = 23;
    spec.jobs = jobs;
    scenario::topology topo(spec);

    std::vector<int> handles;
    for (int ue = 0; ue < topo.num_ues(); ++ue) {
        scenario::flow_spec f;
        f.cca = ue % 2 ? "cubic" : "prague";
        f.ue = ue;
        handles.push_back(topo.add_flow(f));
    }
    topo::mobility_config mob;
    mob.num_cells = 2;
    mob.ues_per_cell = 2;
    mob.handovers_per_ue_per_sec = 1.0;
    mob.start = sim::from_ms(400);
    mob.end = sim::from_ms(1600);
    mob.seed = 3;
    topo.apply(topo::mobility_model(mob).schedule());
    topo.run(sim::from_sec(2));

    run_capture cap;
    for (const int h : handles) {
        for (double v : topo.owd_ms(h).raw()) cap.owd.push_back(v);
        for (double v : topo.rtt_ms(h).raw()) cap.rtt.push_back(v);
        cap.delivered += topo.delivered_bytes(h);
    }
    cap.events = topo.processed_events();
    cap.handovers = topo.handovers_completed();
    return cap;
}

}  // namespace

TEST(trace_replay, sharded_trace_run_is_byte_identical_for_any_worker_count)
{
    const run_capture serial = run_sharded_traces(1);
    const run_capture parallel = run_sharded_traces(4);
    EXPECT_GT(serial.handovers, 0u);
    EXPECT_FALSE(serial.owd.empty());
    EXPECT_EQ(serial, parallel);
}
