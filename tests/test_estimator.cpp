// Egress-rate estimator (Eqs. (3)-(4)): convergence, windowing, volatility
// detection, busy-period handling.
#include <gtest/gtest.h>

#include "core/egress_estimator.h"
#include "sim/rng.h"

using namespace l4span;
using namespace l4span::core;

namespace {
constexpr sim::tick kWindow = sim::from_ms(12.45);  // tau_c = 24.9 ms / 2
}

TEST(estimator, converges_to_constant_rate)
{
    egress_estimator e(kWindow);
    // 1400 bytes every 0.5 ms = 2.8 MB/s.
    for (int i = 0; i < 200; ++i) e.on_transmit(i * sim::from_us(500), 1400);
    EXPECT_TRUE(e.has_estimate());
    EXPECT_NEAR(e.rate_Bps(), 2.8e6, 0.2e6);
    EXPECT_LT(e.rate_err_Bps(), 0.3e6) << "steady traffic has small error";
}

TEST(estimator, tracks_rate_change_within_two_windows)
{
    egress_estimator e(kWindow);
    sim::tick t = 0;
    for (int i = 0; i < 100; ++i) {
        t += sim::from_us(500);
        e.on_transmit(t, 1400);
    }
    // Rate halves.
    for (int i = 0; i < 200; ++i) {
        t += sim::from_ms(1);
        e.on_transmit(t, 1400);
    }
    EXPECT_NEAR(e.rate_Bps(), 1.4e6, 0.2e6);
}

TEST(estimator, volatile_rate_raises_error_estimate)
{
    egress_estimator steady(kWindow), jumpy(kWindow);
    sim::rng rng(3);
    sim::tick t = 0;
    for (int i = 0; i < 2000; ++i) {
        t += sim::from_us(500);
        steady.on_transmit(t, 1400);
        // Bursty service: alternating large/small transport blocks.
        jumpy.on_transmit(t, (i / 25) % 2 == 0 ? 2600 : 200);
    }
    EXPECT_GT(jumpy.rate_err_Bps(), 3.0 * steady.rate_err_Bps());
}

TEST(estimator, busy_period_excludes_idle_gaps)
{
    egress_estimator e(kWindow);
    sim::tick t = 0;
    for (int i = 0; i < 100; ++i) {
        t += sim::from_us(500);
        e.on_transmit(t, 1400);
    }
    const double before = e.rate_Bps();
    // Queue drains; 50 ms of silence; then service resumes at the same pace.
    e.on_queue_empty(t);
    t += sim::from_ms(50);
    e.on_transmit(t, 1400);
    EXPECT_GT(e.rate_Bps(), before * 0.3)
        << "an app-limited lull must not crater the rate estimate";
}

TEST(estimator, idle_without_empty_flag_lowers_rate)
{
    // A silent gap while the queue was NOT empty is a genuine service stall
    // and must lower the estimate.
    egress_estimator e(kWindow);
    sim::tick t = 0;
    for (int i = 0; i < 100; ++i) {
        t += sim::from_us(500);
        e.on_transmit(t, 1400);
    }
    const double before = e.rate_Bps();
    t += sim::from_ms(10);  // stall within the window
    e.on_transmit(t, 1400);
    EXPECT_LT(e.rate_Bps(), before);
}

TEST(estimator, no_estimate_before_first_sample)
{
    egress_estimator e(kWindow);
    EXPECT_FALSE(e.has_estimate());
    EXPECT_DOUBLE_EQ(e.rate_Bps(), 0.0);
    EXPECT_DOUBLE_EQ(e.rate_err_Bps(), 0.0);
}

TEST(estimator, instantaneous_rate_reflects_window_bytes)
{
    egress_estimator e(sim::from_ms(10));
    e.on_transmit(sim::from_ms(10), 5000);
    e.on_transmit(sim::from_ms(12), 5000);
    // 10000 bytes in a 10 ms busy window = 1 MB/s.
    EXPECT_NEAR(e.instantaneous_Bps(), 1.0e6, 0.1e6);
}
