// End-to-end integration tests: full stack (TCP sender -> wired -> CU ->
// RLC/MAC -> UE -> ACKs back), asserting the paper's headline behaviour.
#include <gtest/gtest.h>

#include "scenario/cell_scenario.h"

using namespace l4span;
using scenario::cell_scenario;
using scenario::cell_spec;
using scenario::cu_mode;
using scenario::flow_spec;

namespace {

cell_spec base_cell(cu_mode mode)
{
    cell_spec c;
    c.num_ues = 1;
    c.channel = "static";
    c.cu = mode;
    c.seed = 42;
    return c;
}

}  // namespace

TEST(integration, single_prague_flow_delivers_data)
{
    cell_scenario s(base_cell(cu_mode::l4span));
    flow_spec f;
    f.cca = "prague";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(5));

    EXPECT_GT(s.delivered_bytes(h), 1u << 20) << "flow should deliver > 1 MB in 5 s";
    EXPECT_GT(s.goodput_mbps(h), 5.0);
    EXPECT_GT(s.owd_ms(h).count(), 100u);
}

TEST(integration, l4span_cuts_prague_delay_vs_vanilla_ran)
{
    double owd_with = 0.0, owd_without = 0.0, tput_with = 0.0, tput_without = 0.0;
    for (const bool enable : {false, true}) {
        cell_scenario s(base_cell(enable ? cu_mode::l4span : cu_mode::none));
        flow_spec f;
        f.cca = "prague";
        const int h = s.add_flow(f);
        s.run(sim::from_sec(8));
        (enable ? owd_with : owd_without) = s.owd_ms(h).median();
        (enable ? tput_with : tput_without) = s.goodput_mbps(h);
    }
    // The paper reports ~98% one-way-delay reduction at < 1% throughput cost.
    EXPECT_LT(owd_with, owd_without * 0.2)
        << "with=" << owd_with << "ms without=" << owd_without << "ms";
    EXPECT_GT(tput_with, tput_without * 0.8);
}

TEST(integration, l4span_cuts_cubic_delay_vs_vanilla_ran)
{
    double owd_with = 0.0, owd_without = 0.0, tput_with = 0.0, tput_without = 0.0;
    for (const bool enable : {false, true}) {
        cell_scenario s(base_cell(enable ? cu_mode::l4span : cu_mode::none));
        flow_spec f;
        f.cca = "cubic";
        const int h = s.add_flow(f);
        s.run(sim::from_sec(8));
        (enable ? owd_with : owd_without) = s.owd_ms(h).median();
        (enable ? tput_with : tput_without) = s.goodput_mbps(h);
    }
    EXPECT_LT(owd_with, owd_without * 0.5);
    EXPECT_GT(tput_with, tput_without * 0.7);
}

TEST(integration, sixteen_ue_cell_shares_capacity)
{
    cell_spec c = base_cell(cu_mode::l4span);
    c.num_ues = 16;
    cell_scenario s(c);
    std::vector<int> handles;
    for (int u = 0; u < 16; ++u) {
        flow_spec f;
        f.cca = "prague";
        f.ue = u;
        handles.push_back(s.add_flow(f));
    }
    s.run(sim::from_sec(6));

    double total = 0.0;
    for (int h : handles) {
        const double g = s.goodput_mbps(h);
        EXPECT_GT(g, 0.5) << "every UE should get a share";
        total += g;
    }
    EXPECT_GT(total, 20.0) << "aggregate should approach the ~40 Mbit/s cell";
    EXPECT_LT(total, 60.0);
}

TEST(integration, media_flow_runs_under_l4span)
{
    cell_scenario s(base_cell(cu_mode::l4span));
    flow_spec f;
    f.cca = "scream";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(5));
    EXPECT_GT(s.goodput_mbps(h), 0.5);
    EXPECT_GT(s.owd_ms(h).count(), 50u);
}

int main_unused;  // silences unused-translation-unit lint in some setups
