// L4Span entity: event handling, classification, marking paths, views.
#include <gtest/gtest.h>

#include "core/l4span.h"

using namespace l4span;
using namespace l4span::core;

namespace {

net::packet udp_pkt(net::ecn e, std::uint32_t payload = 1200)
{
    net::packet p;
    p.ft = {1, 2, 1000, 2000, net::ip_proto::udp};
    p.ecn_field = e;
    p.payload_bytes = payload;
    return p;
}

net::packet tcp_data(net::ecn e, std::uint32_t payload = 1400, std::uint16_t dport = 2000)
{
    net::packet p;
    p.ft = {1, 2, 1000, dport, net::ip_proto::tcp};
    p.ecn_field = e;
    p.tcp = net::tcp_header{};
    p.payload_bytes = payload;
    return p;
}

ran::dl_delivery_status status(ran::pdcp_sn_t txed, sim::tick ts,
                               ran::rnti_t ue = 1, ran::drb_id_t drb = 1)
{
    ran::dl_delivery_status st;
    st.ue = ue;
    st.drb = drb;
    st.highest_transmitted_sn = txed;
    st.has_transmitted = true;
    st.timestamp = ts;
    return st;
}

// Feeds `n` packets and transmit feedback at a steady rate to warm up the
// estimator. One SDU is always outstanding so the queue counts as
// backlogged and the busy-period estimator reads the true service rate.
void warm_up(core::l4span& l, int n, sim::tick spacing, std::uint32_t payload = 1200)
{
    auto head = udp_pkt(net::ecn::ect1, payload);
    l.on_dl_packet(head, 1, 1, 1, 0);
    for (int i = 0; i < n; ++i) {
        const sim::tick t = i * spacing;
        auto p = udp_pkt(net::ecn::ect1, payload);
        l.on_dl_packet(p, 1, 1, static_cast<ran::pdcp_sn_t>(i + 2), t);
        // Transmit the previous SDU: the new one keeps the queue non-empty.
        l.on_delivery_status(status(static_cast<ran::pdcp_sn_t>(i + 1), t + spacing / 2),
                             t + spacing / 2);
    }
}

}  // namespace

TEST(l4span_entity, counts_the_three_event_classes)
{
    core::l4span l({});
    auto p = udp_pkt(net::ecn::ect1);
    l.on_dl_packet(p, 1, 1, 1, 0);
    l.on_delivery_status(status(1, sim::from_ms(1)), sim::from_ms(1));
    net::packet ack = tcp_data(net::ecn::not_ect, 0);
    ack.tcp->flags.ack = true;
    l.on_ul_packet(ack, 1, sim::from_ms(2));
    EXPECT_EQ(l.dl_events(), 1u);
    EXPECT_EQ(l.feedback_events(), 1u);
    EXPECT_EQ(l.ul_events(), 1u);
}

TEST(l4span_entity, classifies_flows_into_drb_mix)
{
    core::l4span l({});
    auto a = udp_pkt(net::ecn::ect1);
    l.on_dl_packet(a, 1, 1, 1, 0);
    auto v = l.view(1, 1);
    EXPECT_TRUE(v.has_l4s);
    EXPECT_FALSE(v.has_classic);

    auto b = tcp_data(net::ecn::ect0);
    l.on_dl_packet(b, 1, 1, 2, 0);
    v = l.view(1, 1);
    EXPECT_TRUE(v.has_classic) << "second flow makes the DRB mixed";
}

TEST(l4span_entity, estimator_and_sojourn_update_from_feedback)
{
    core::l4span l({});
    warm_up(l, 100, sim::from_us(500));
    const auto v = l.view(1, 1);
    EXPECT_GT(v.rate_hat_Bps, 1e6);
    EXPECT_LE(v.standing_bytes, 1300u) << "only the in-service SDU stands";
    // Now 20 packets ingress without feedback: standing queue builds.
    for (int i = 0; i < 20; ++i) {
        auto p = udp_pkt(net::ecn::ect1);
        l.on_dl_packet(p, 1, 1, static_cast<ran::pdcp_sn_t>(101 + i), sim::from_ms(60));
    }
    EXPECT_GT(l.view(1, 1).standing_bytes, 20000u);
}

TEST(l4span_entity, udp_l4s_marked_on_downlink_when_queue_exceeds_threshold)
{
    l4span_config cfg;
    cfg.seed = 3;
    core::l4span l(cfg);
    warm_up(l, 200, sim::from_us(500));
    // Build a standing queue worth far more than tau_s at the current rate.
    int ce = 0, total = 0;
    for (int i = 0; i < 400; ++i) {
        auto p = udp_pkt(net::ecn::ect1);
        l.on_dl_packet(p, 1, 1, static_cast<ran::pdcp_sn_t>(301 + i), sim::from_ms(100));
        ++total;
        if (p.ecn_field == net::ecn::ce) ++ce;
        // Feedback without transmissions keeps the marking state fresh.
        if (i % 10 == 9) {
            l.on_delivery_status(status(201, sim::from_ms(100) + i), sim::from_ms(100) + i);
        }
    }
    EXPECT_GT(ce, total / 2) << "deep queue must mark aggressively (Eq. 1)";
}

TEST(l4span_entity, no_marking_with_empty_queue)
{
    l4span_config cfg;
    cfg.seed = 3;
    core::l4span l(cfg);
    warm_up(l, 200, sim::from_us(500));
    // Queue kept at zero (feedback confirms everything transmitted).
    int ce = 0;
    for (int i = 0; i < 200; ++i) {
        auto p = udp_pkt(net::ecn::ect1);
        const auto sn = static_cast<ran::pdcp_sn_t>(301 + i);
        const sim::tick t = sim::from_ms(100) + i * sim::from_us(500);
        l.on_dl_packet(p, 1, 1, sn, t);
        if (p.ecn_field == net::ecn::ce) ++ce;
        l.on_delivery_status(status(sn, t + sim::from_us(100)), t + sim::from_us(100));
    }
    EXPECT_LE(ce, 2) << "an empty queue must (almost) never mark";
}

TEST(l4span_entity, non_ecn_flows_untouched_unless_drop_mode)
{
    l4span_config cfg;
    cfg.seed = 3;
    core::l4span l(cfg);
    warm_up(l, 200, sim::from_us(500));
    for (int i = 0; i < 100; ++i) {
        auto p = udp_pkt(net::ecn::not_ect);
        EXPECT_TRUE(l.on_dl_packet(p, 1, 1, static_cast<ran::pdcp_sn_t>(301 + i),
                                   sim::from_ms(100)));
        EXPECT_EQ(p.ecn_field, net::ecn::not_ect);
    }
}

TEST(l4span_entity, drop_mode_sheds_non_ecn_under_congestion)
{
    l4span_config cfg;
    cfg.seed = 3;
    cfg.drop_non_ecn = true;
    core::l4span l(cfg);
    // Mark this DRB classic and congested: non-ECN UDP flow.
    warm_up(l, 200, sim::from_us(500));
    int dropped = 0;
    for (int i = 0; i < 1000; ++i) {
        auto p = udp_pkt(net::ecn::not_ect);
        p.ft.dst_port = 7777;  // distinct flow
        const auto sn = static_cast<ran::pdcp_sn_t>(301 + i);
        if (!l.on_dl_packet(p, 1, 1, sn, sim::from_ms(100))) ++dropped;
        if (i % 10 == 9)
            l.on_delivery_status(status(201, sim::from_ms(100) + i), sim::from_ms(100) + i);
    }
    EXPECT_GT(dropped, 0) << "drop-based feedback for non-ECN flows (§4.4)";
    EXPECT_EQ(l.drops(), static_cast<std::uint64_t>(dropped));
}

TEST(l4span_entity, drop_mode_sheds_stripped_tcp_on_the_short_circuit_path)
{
    // A TCP flow the path stripped to Not-ECT gets no ACK rewrite, so with
    // short-circuiting on (the default) the drop fallback is its only
    // congestion signal. The short-circuit branch must honor drop_non_ecn
    // instead of returning true unconditionally.
    l4span_config cfg;
    cfg.seed = 3;
    cfg.drop_non_ecn = true;
    ASSERT_TRUE(cfg.short_circuit);
    core::l4span l(cfg);
    warm_up(l, 200, sim::from_us(500));
    int dropped = 0;
    for (int i = 0; i < 1000; ++i) {
        auto p = tcp_data(net::ecn::not_ect, 1400, /*dport=*/7777);
        const auto sn = static_cast<ran::pdcp_sn_t>(301 + i);
        if (!l.on_dl_packet(p, 1, 1, sn, sim::from_ms(100))) ++dropped;
        if (i % 10 == 9)
            l.on_delivery_status(status(201, sim::from_ms(100) + i), sim::from_ms(100) + i);
    }
    EXPECT_GT(dropped, 0) << "stripped TCP must get drop feedback under "
                             "congestion, or it sits in a deep RLC queue";
    EXPECT_EQ(l.drops(), static_cast<std::uint64_t>(dropped));

    // With the knob off (the default), the same stream passes untouched.
    l4span_config off;
    off.seed = 3;
    core::l4span l2(off);
    warm_up(l2, 200, sim::from_us(500));
    for (int i = 0; i < 1000; ++i) {
        auto p = tcp_data(net::ecn::not_ect, 1400, /*dport=*/7777);
        EXPECT_TRUE(l2.on_dl_packet(p, 1, 1, static_cast<ran::pdcp_sn_t>(301 + i),
                                    sim::from_ms(100)));
    }
    EXPECT_EQ(l2.drops(), 0u);
}

TEST(l4span_entity, feedback_for_departed_ue_does_not_resurrect_state)
{
    // Delivery status and discards are find-only: late F1-U feedback for a
    // detached (or re-established) UE must not re-create per-DRB state
    // under the dead RNTI.
    core::l4span l({});
    auto p = udp_pkt(net::ecn::ect1);
    l.on_dl_packet(p, 1, 1, 1, 0);
    ASSERT_EQ(l.tracked_ues(), (std::vector<ran::rnti_t>{1}));
    (void)l.detach_ue(1);
    EXPECT_TRUE(l.tracked_ues().empty());
    l.on_delivery_status(status(1, sim::from_ms(2)), sim::from_ms(2));
    l.on_dl_discard(1, 1, 1, sim::from_ms(2));
    EXPECT_TRUE(l.tracked_ues().empty())
        << "feedback events must never create state (packets do)";
}

TEST(l4span_entity, discard_reconciles_profile)
{
    core::l4span l({});
    auto p = udp_pkt(net::ecn::ect1);
    l.on_dl_packet(p, 1, 1, 1, 0);
    EXPECT_GT(l.view(1, 1).standing_bytes, 0u);
    l.on_dl_discard(1, 1, 1, sim::from_ms(1));
    EXPECT_EQ(l.view(1, 1).standing_bytes, 0u);
}

TEST(l4span_entity, view_of_unknown_drb_is_empty)
{
    core::l4span l({});
    const auto v = l.view(42, 9);
    EXPECT_DOUBLE_EQ(v.rate_hat_Bps, 0.0);
    EXPECT_LE(v.standing_bytes, 1300u) << "only the in-service SDU stands";
}

TEST(l4span_entity, resident_state_grows_with_flows)
{
    core::l4span l({});
    const auto before = l.resident_state_bytes();
    for (int i = 0; i < 50; ++i) {
        auto p = udp_pkt(net::ecn::ect1);
        p.ft.dst_port = static_cast<std::uint16_t>(3000 + i);
        l.on_dl_packet(p, 1, 1, static_cast<ran::pdcp_sn_t>(i + 1), 0);
    }
    EXPECT_GT(l.resident_state_bytes(), before);
}

TEST(l4span_entity, per_drb_isolation)
{
    core::l4span l({});
    auto a = udp_pkt(net::ecn::ect1);
    l.on_dl_packet(a, 1, 1, 1, 0);
    auto b = udp_pkt(net::ecn::ect0);
    b.ft.dst_port = 9999;
    l.on_dl_packet(b, 1, 2, 1, 0);
    EXPECT_TRUE(l.view(1, 1).has_l4s);
    EXPECT_FALSE(l.view(1, 1).has_classic);
    EXPECT_TRUE(l.view(1, 2).has_classic);
    EXPECT_FALSE(l.view(1, 2).has_l4s);
}
