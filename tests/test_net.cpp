// Packet model, wire serialization, checksums, AccECN option, ECN rewrite.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/wire.h"

using namespace l4span::net;

namespace {

packet sample_tcp_packet()
{
    packet p;
    p.ft = {0x0a000001, 0xc0a80001, 443, 50000, ip_proto::tcp};
    p.ecn_field = ecn::ect1;
    p.tcp = tcp_header{};
    p.tcp->seq = 1000;
    p.tcp->ack_seq = 555;
    p.tcp->flags.ack = true;
    p.tcp->window = 4096;
    p.payload_bytes = 100;
    return p;
}

}  // namespace

TEST(ecn, classification)
{
    EXPECT_EQ(classify(ecn::ect1), flow_class::l4s);
    EXPECT_EQ(classify(ecn::ect0), flow_class::classic);
    EXPECT_EQ(classify(ecn::not_ect), flow_class::non_ecn);
    EXPECT_EQ(classify(ecn::ce), flow_class::classic);
    EXPECT_TRUE(is_ect(ecn::ect0));
    EXPECT_TRUE(is_ect(ecn::ect1));
    EXPECT_FALSE(is_ect(ecn::ce));
    EXPECT_FALSE(is_ect(ecn::not_ect));
}

TEST(five_tuple, reverse_and_hash)
{
    five_tuple t{1, 2, 10, 20, ip_proto::tcp};
    const five_tuple r = t.reversed();
    EXPECT_EQ(r.src_ip, 2u);
    EXPECT_EQ(r.dst_ip, 1u);
    EXPECT_EQ(r.src_port, 20);
    EXPECT_EQ(r.dst_port, 10);
    EXPECT_EQ(r.reversed(), t);
    five_tuple_hash h;
    EXPECT_NE(h(t), h(r));
    EXPECT_EQ(h(t), h(five_tuple{1, 2, 10, 20, ip_proto::tcp}));
}

TEST(packet, size_accounts_for_headers)
{
    packet p = sample_tcp_packet();
    EXPECT_EQ(p.size_bytes(), 20u + 20u + 100u);
    p.tcp->accecn.present = true;
    EXPECT_EQ(p.size_bytes(), 20u + 32u + 100u);

    packet u;
    u.ft.proto = ip_proto::udp;
    u.payload_bytes = 100;
    EXPECT_EQ(u.size_bytes(), 20u + 8u + 100u);
}

TEST(packet, ace_field_roundtrip)
{
    tcp_header h;
    for (std::uint8_t v = 0; v < 8; ++v) {
        h.set_ace(v);
        EXPECT_EQ(h.ace(), v);
    }
}

TEST(wire, internet_checksum_known_vector)
{
    // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, checksum 0x220d.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(wire::internet_checksum(data, sizeof(data)), 0x220d);
}

TEST(wire, serialize_produces_valid_checksums)
{
    const packet p = sample_tcp_packet();
    const auto bytes = wire::serialize(p);
    ASSERT_GE(bytes.size(), 40u);
    EXPECT_TRUE(wire::verify_checksums(bytes.data(), bytes.size()));
}

TEST(wire, tcp_roundtrip_preserves_fields)
{
    packet p = sample_tcp_packet();
    p.tcp->accecn.present = true;
    p.tcp->accecn.ee0b = 0x010203;
    p.tcp->accecn.eceb = 0x040506;
    p.tcp->accecn.ee1b = 0x0708AA;
    p.tcp->flags.ece = true;
    p.tcp->flags.cwr = true;
    p.tcp->flags.ae = true;
    const auto bytes = wire::serialize(p);
    EXPECT_TRUE(wire::verify_checksums(bytes.data(), bytes.size()));

    packet q;
    ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q));
    EXPECT_EQ(q.ft, p.ft);
    EXPECT_EQ(q.ecn_field, p.ecn_field);
    ASSERT_TRUE(q.tcp.has_value());
    EXPECT_EQ(q.tcp->seq, p.tcp->seq);
    EXPECT_EQ(q.tcp->ack_seq, p.tcp->ack_seq);
    EXPECT_TRUE(q.tcp->flags.ece);
    EXPECT_TRUE(q.tcp->flags.cwr);
    EXPECT_TRUE(q.tcp->flags.ae);
    EXPECT_TRUE(q.tcp->accecn.present);
    EXPECT_EQ(q.tcp->accecn.ee0b, 0x010203u);
    EXPECT_EQ(q.tcp->accecn.eceb, 0x040506u);
    EXPECT_EQ(q.tcp->accecn.ee1b, 0x0708AAu);
    EXPECT_EQ(q.payload_bytes, p.payload_bytes);
}

TEST(wire, udp_roundtrip)
{
    packet p;
    p.ft = {0x0a000002, 0xc0a80002, 5004, 6000, ip_proto::udp};
    p.ecn_field = ecn::ce;
    p.payload_bytes = 1200;
    const auto bytes = wire::serialize(p);
    EXPECT_TRUE(wire::verify_checksums(bytes.data(), bytes.size()));
    packet q;
    ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q));
    EXPECT_EQ(q.ft, p.ft);
    EXPECT_EQ(q.ecn_field, ecn::ce);
    EXPECT_EQ(q.payload_bytes, 1200u);
}

TEST(wire, remark_ecn_updates_ip_checksum)
{
    const packet p = sample_tcp_packet();
    auto bytes = wire::serialize(p);
    wire::remark_ecn(bytes, ecn::ce);
    EXPECT_TRUE(wire::verify_checksums(bytes.data(), bytes.size()))
        << "IP checksum must be recomputed after the ECN rewrite";
    packet q;
    ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q));
    EXPECT_EQ(q.ecn_field, ecn::ce);
}

TEST(wire, rewrite_tcp_feedback_updates_tcp_checksum)
{
    packet p = sample_tcp_packet();
    p.payload_bytes = 0;
    p.tcp->accecn.present = true;
    auto bytes = wire::serialize(p);

    accecn_option opt;
    opt.present = true;
    opt.ee0b = 111;
    opt.eceb = 222;
    opt.ee1b = 333;
    wire::rewrite_tcp_ecn_feedback(bytes, 0b101, opt);
    EXPECT_TRUE(wire::verify_checksums(bytes.data(), bytes.size()))
        << "TCP checksum must be recomputed after the feedback rewrite";

    packet q;
    ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q));
    EXPECT_EQ(q.tcp->ace(), 0b101);
    EXPECT_EQ(q.tcp->accecn.ee0b, 111u);
    EXPECT_EQ(q.tcp->accecn.eceb, 222u);
    EXPECT_EQ(q.tcp->accecn.ee1b, 333u);
}

TEST(wire, parse_rejects_garbage)
{
    std::vector<std::uint8_t> junk(10, 0xff);
    packet q;
    EXPECT_FALSE(wire::parse(junk.data(), junk.size(), q));
    junk.assign(64, 0x00);
    EXPECT_FALSE(wire::parse(junk.data(), junk.size(), q));  // version 0
}
