// Property/fuzz tests for the wire codec: randomized packets must
// round-trip exactly with valid checksums, and random ECN/feedback
// rewrites must keep the checksums valid.
#include <gtest/gtest.h>

#include "net/wire.h"
#include "sim/rng.h"

using namespace l4span;
using namespace l4span::net;

namespace {

packet random_packet(sim::rng& rng)
{
    packet p;
    p.ft.src_ip = static_cast<std::uint32_t>(rng.uniform_int(1, 0xffffffff));
    p.ft.dst_ip = static_cast<std::uint32_t>(rng.uniform_int(1, 0xffffffff));
    p.ft.src_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    p.ft.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    p.ecn_field = static_cast<ecn>(rng.uniform_int(0, 3));
    p.dscp = static_cast<std::uint8_t>(rng.uniform_int(0, 63));
    p.payload_bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 1460));
    if (rng.bernoulli(0.6)) {
        p.ft.proto = ip_proto::tcp;
        tcp_header h;
        h.seq = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff));
        h.ack_seq = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffffff));
        h.window = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
        h.flags.syn = rng.bernoulli(0.1);
        h.flags.ack = rng.bernoulli(0.8);
        h.flags.fin = rng.bernoulli(0.05);
        h.flags.ece = rng.bernoulli(0.3);
        h.flags.cwr = rng.bernoulli(0.3);
        h.flags.ae = rng.bernoulli(0.3);
        if (rng.bernoulli(0.5)) {
            h.accecn.present = true;
            h.accecn.ee0b = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
            h.accecn.eceb = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
            h.accecn.ee1b = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
        }
        p.tcp = h;
    } else {
        p.ft.proto = ip_proto::udp;
    }
    return p;
}

}  // namespace

TEST(wire_fuzz, random_packets_roundtrip_with_valid_checksums)
{
    sim::rng rng(20260611);
    for (int i = 0; i < 500; ++i) {
        const packet p = random_packet(rng);
        const auto bytes = wire::serialize(p);
        ASSERT_TRUE(wire::verify_checksums(bytes.data(), bytes.size())) << "iter " << i;
        packet q;
        ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q)) << "iter " << i;
        EXPECT_EQ(q.ft, p.ft);
        EXPECT_EQ(q.ecn_field, p.ecn_field);
        EXPECT_EQ(q.dscp, p.dscp);
        EXPECT_EQ(q.payload_bytes, p.payload_bytes);
        if (p.is_tcp()) {
            ASSERT_TRUE(q.tcp.has_value());
            EXPECT_EQ(q.tcp->seq, p.tcp->seq);
            EXPECT_EQ(q.tcp->ack_seq, p.tcp->ack_seq);
            EXPECT_EQ(q.tcp->window, p.tcp->window);
            EXPECT_EQ(q.tcp->flags.syn, p.tcp->flags.syn);
            EXPECT_EQ(q.tcp->flags.ece, p.tcp->flags.ece);
            EXPECT_EQ(q.tcp->flags.cwr, p.tcp->flags.cwr);
            EXPECT_EQ(q.tcp->flags.ae, p.tcp->flags.ae);
            EXPECT_EQ(q.tcp->accecn.present, p.tcp->accecn.present);
            if (p.tcp->accecn.present) {
                EXPECT_EQ(q.tcp->accecn.ee0b, p.tcp->accecn.ee0b);
                EXPECT_EQ(q.tcp->accecn.eceb, p.tcp->accecn.eceb);
                EXPECT_EQ(q.tcp->accecn.ee1b, p.tcp->accecn.ee1b);
            }
        }
    }
}

TEST(wire_fuzz, random_ecn_remarks_keep_checksums_valid)
{
    sim::rng rng(42);
    for (int i = 0; i < 300; ++i) {
        const packet p = random_packet(rng);
        auto bytes = wire::serialize(p);
        const auto new_ecn = static_cast<ecn>(rng.uniform_int(0, 3));
        wire::remark_ecn(bytes, new_ecn);
        ASSERT_TRUE(wire::verify_checksums(bytes.data(), bytes.size())) << "iter " << i;
        packet q;
        ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q));
        EXPECT_EQ(q.ecn_field, new_ecn);
    }
}

TEST(wire_fuzz, random_feedback_rewrites_keep_checksums_valid)
{
    sim::rng rng(7);
    for (int i = 0; i < 300; ++i) {
        packet p = random_packet(rng);
        if (!p.is_tcp()) continue;
        p.tcp->accecn.present = true;
        auto bytes = wire::serialize(p);
        accecn_option opt;
        opt.present = true;
        opt.ee0b = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
        opt.eceb = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
        opt.ee1b = static_cast<std::uint32_t>(rng.uniform_int(0, 0xffffff));
        const auto ace = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
        wire::rewrite_tcp_ecn_feedback(bytes, ace, opt);
        ASSERT_TRUE(wire::verify_checksums(bytes.data(), bytes.size())) << "iter " << i;
        packet q;
        ASSERT_TRUE(wire::parse(bytes.data(), bytes.size(), q));
        EXPECT_EQ(q.tcp->ace(), ace);
        EXPECT_EQ(q.tcp->accecn.eceb, opt.eceb);
    }
}

TEST(wire_fuzz, truncated_inputs_never_crash_parser)
{
    sim::rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const packet p = random_packet(rng);
        auto bytes = wire::serialize(p);
        const auto cut = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bytes.size())));
        packet q;
        // Must return cleanly (true only if still structurally complete).
        wire::parse(bytes.data(), cut, q);
    }
    SUCCEED();
}
