// Byte-identity regression harness for the hot-path memory-layout work.
//
// Every layout optimization (packet arena, SN rings, flat tables, SoA
// profile table, bucket-calendar event queue) argues it cannot change
// simulation output; this suite pins that argument down executably. A
// fig09-style congested-cell grid is rendered to its full formatted table
// serially and through the thread pool, and the two strings must match
// byte for byte — any change to RNG draw order, floating-point association
// or iteration order shows up as a diff here before it reaches CI's
// bench-level diffs. (The fault-chaos slice has the same guarantee in
// test_fault_chaos.chaos_run_is_byte_identical_for_any_worker_count.)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "stats/sample_set.h"
#include "stats/table.h"

using namespace l4span;

namespace {

struct grid_point {
    const char* cca;
    bool l4span_on;
};

// One small fig09-quick-shaped point: a congested static-channel cell with
// `ues` long-lived downloads, pooled OWD + per-UE goodput.
std::string run_point(const grid_point& gp)
{
    scenario::cell_spec cell;
    cell.num_ues = 4;
    cell.channel = "static";
    cell.rlc_queue_sdus = 16384;
    cell.cu = gp.l4span_on ? scenario::cu_mode::l4span : scenario::cu_mode::none;
    cell.seed = 41;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < cell.num_ues; ++u) {
        scenario::flow_spec f;
        f.cca = gp.cca;
        f.ue = u;
        handles.push_back(s.add_flow(f));
    }
    s.run(sim::from_sec(1.5));

    stats::sample_set owd;
    char buf[64];
    std::string row(gp.cca);
    row += gp.l4span_on ? "/l4span" : "/baseline";
    for (int h : handles) {
        for (double v : s.owd_ms(h).raw()) owd.add(v);
        std::snprintf(buf, sizeof buf, " tput=%.6f", s.goodput_mbps(h));
        row += buf;
    }
    std::snprintf(buf, sizeof buf, " owd_p50=%.6f owd_p90=%.6f n=%zu",
                  owd.percentile(50), owd.percentile(90), owd.count());
    row += buf;
    return row;
}

// Renders the whole grid through a pool of `jobs` workers.
std::string run_grid(int jobs)
{
    const std::vector<grid_point> grid = {
        {"prague", false}, {"prague", true}, {"cubic", false}, {"cubic", true}};
    scenario::grid_runner pool(jobs);
    const auto rows =
        pool.map(grid.size(), [&](std::size_t i) { return run_point(grid[i]); });
    std::string out;
    for (const auto& r : rows) {
        out += r;
        out += '\n';
    }
    return out;
}

TEST(byte_identity, fig09_grid_serial_equals_jobs4)
{
    const std::string serial = run_grid(1);
    const std::string parallel = run_grid(4);
    // The table must be non-trivial (all four points produced samples)...
    EXPECT_NE(serial.find("prague/l4span"), std::string::npos);
    EXPECT_NE(serial.find("cubic/baseline"), std::string::npos);
    EXPECT_EQ(serial.find("n=0 "), std::string::npos);
    // ...and byte-identical across worker counts.
    EXPECT_EQ(serial, parallel);
}

TEST(byte_identity, repeated_runs_are_deterministic)
{
    // Same seed, same build: two serial runs must agree bit-for-bit (the
    // in-process guarantee behind the committed-baseline diffs in CI).
    EXPECT_EQ(run_grid(1), run_grid(1));
}

}  // namespace
