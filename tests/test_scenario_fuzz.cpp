// Fuzz/property campaign for the scenario schema parser ("fuzz" CTest
// label). parse_scenario_text must never crash, hang or throw anything but
// scenario_error, no matter the input: byte soup, truncations of a valid
// document, random single-byte mutations, duplicate keys, absurd values.
// Diagnostics must name the offending key, and export -> parse -> export
// must be the exact identity on bytes — including for a programmatically
// built cell_flows spec exercising the WRED surface, which no compiled-in
// bench produces.
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "scenario/scenario_run.h"
#include "scenario/scenario_spec.h"
#include "stats/json.h"

using namespace l4span;
using scenario::builtin_scenario;
using scenario::export_scenario;
using scenario::parse_scenario_text;
using scenario::scenario_error;
using scenario::scenario_spec;

namespace {

// parse() may accept (returning a spec) or reject with scenario_error;
// any other exception type — or a crash — fails the campaign.
void must_accept_or_diagnose(const std::string& text, const char* what)
{
    try {
        (void)parse_scenario_text(text, "<fuzz>");
    } catch (const scenario_error&) {
        // expected failure mode
    } catch (...) {
        FAIL() << what << ": non-scenario_error escaped for input: "
               << text.substr(0, 120);
    }
}

// A generic cell_flows scenario on the WRED dual-queue bottleneck — the
// schema surface no bench binary can produce.
scenario_spec wred_cell_flows_spec()
{
    scenario_spec s;
    s.figure = "wred_demo";
    s.title = "WRED dual-queue cell";
    s.paper_ref = "scenario-engine demo (no paper figure)";
    s.family = "cell_flows";
    s.quick = true;
    s.duration = sim::from_ms(1500);
    s.cell_flows.seeds = {7, 8};
    auto& cell = s.cell_flows.cell;
    cell.num_ues = 4;
    cell.bottleneck_aqm = "wred";
    cell.wred.l4s = {4 * 1514, 32 * 1514, 1.0};
    cell.wred.classic = {16 * 1514, 128 * 1514, 0.08};
    cell.wred.ecn_drop_bytes = 1 << 20;
    cell.wred.l4s_weight = 8;
    scenario::cell_flows_family::flow f;
    f.spec.cca = "prague";
    f.spec.ue = 0;
    f.count = 2;
    s.cell_flows.flows.push_back(f);
    scenario::cell_flows_family::flow g;
    g.spec.cca = "cubic";
    g.spec.ue = 2;
    g.count = 1;
    s.cell_flows.flows.push_back(g);
    return s;
}

}  // namespace

TEST(scenario_fuzz, byte_soup_never_crashes)
{
    sim::rng rng(0xfeedbeef);
    for (int iter = 0; iter < 400; ++iter) {
        std::string soup;
        const int len = static_cast<int>(rng.uniform_int(0, 300));
        soup.reserve(static_cast<std::size_t>(len));
        for (int i = 0; i < len; ++i)
            soup.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        must_accept_or_diagnose(soup, "byte soup");
    }
}

TEST(scenario_fuzz, structured_soup_never_crashes)
{
    // Soup biased toward JSON punctuation and schema vocabulary: reaches
    // deeper parser states than uniform bytes.
    static const char* frags[] = {
        "{", "}", "[", "]", ":", ",", "\"", "true", "false", "null",
        "1e308", "-0.0", "1e-308", "9223372036854775807",
        "\"schema\"", "\"l4span-scenario-v1\"", "\"family\"", "\"tcp_grid\"",
        "\"duration_s\"", "\"cell\"", "\"wred\"", "\"flows\"", "\\u0000",
    };
    sim::rng rng(0xc0ffee);
    for (int iter = 0; iter < 400; ++iter) {
        std::string soup;
        const int n = static_cast<int>(rng.uniform_int(1, 40));
        for (int i = 0; i < n; ++i) {
            soup += frags[rng.uniform_int(
                0, static_cast<std::int64_t>(std::size(frags)) - 1)];
            if (rng.bernoulli(0.3)) soup += ' ';
        }
        must_accept_or_diagnose(soup, "structured soup");
    }
}

TEST(scenario_fuzz, every_truncation_of_valid_export_diagnosed)
{
    const std::string full =
        export_scenario(builtin_scenario("fig09", true)).dump();
    // Cuts inside trailing whitespace still leave a complete document; every
    // cut before the closing brace must be diagnosed.
    const std::size_t last_brace = full.find_last_of('}');
    ASSERT_NE(last_brace, std::string::npos);
    for (std::size_t cut = 0; cut <= last_brace; ++cut) {
        try {
            (void)parse_scenario_text(full.substr(0, cut), "<truncated>");
            FAIL() << "truncation at byte " << cut << " must not parse";
        } catch (const scenario_error&) {
        } catch (...) {
            FAIL() << "non-scenario_error at truncation byte " << cut;
        }
    }
}

TEST(scenario_fuzz, single_byte_mutations_never_crash)
{
    const std::string full =
        export_scenario(builtin_scenario("ecn_impairment", true)).dump();
    sim::rng rng(99);
    for (int iter = 0; iter < 600; ++iter) {
        std::string mut = full;
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(mut.size()) - 1));
        mut[pos] = static_cast<char>(rng.uniform_int(0, 255));
        must_accept_or_diagnose(mut, "single-byte mutation");
    }
}

TEST(scenario_fuzz, duplicate_key_diagnosed_with_name_and_line)
{
    std::string text = export_scenario(builtin_scenario("fig16", true)).dump();
    const std::string needle = "\"seed\":";
    const auto pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, "\"seed\": 1, ");
    try {
        parse_scenario_text(text, "<dup>");
        FAIL() << "duplicate key must be rejected";
    } catch (const scenario_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("seed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line"), std::string::npos) << msg;
    }
}

TEST(scenario_fuzz, absurd_values_diagnosed_with_key)
{
    // Each case: a valid fig09 export with one value replaced by something
    // absurd; the diagnostic must carry the key name.
    const std::string base =
        export_scenario(builtin_scenario("fig09", true)).dump();
    struct edit {
        const char* needle;
        const char* replacement;
        const char* key_in_msg;
    };
    const edit edits[] = {
        {"\"duration_s\": 6", "\"duration_s\": -5", "duration_s"},
        {"\"duration_s\": 6", "\"duration_s\": 1e9", "duration_s"},
        {"\"seed_base\": 1000", "\"seed_base\": 1e30", "seed_base"},
        {"\"ue_counts\": [\n      16\n    ]", "\"ue_counts\": [\n      0\n    ]",
         "ue_counts"},
        {"\"ue_counts\": [\n      16\n    ]", "\"ue_counts\": []", "ue_counts"},
        {"\"queues_sdus\": [\n      256\n    ]",
         "\"queues_sdus\": [\n      -3\n    ]", "queues_sdus"},
        {"\"ccas\": [\n      \"prague\"\n    ]", "\"ccas\": [\n      42\n    ]",
         "ccas"},
        {"\"rtts_ms\": [\n      19\n    ]",
         "\"rtts_ms\": [\n      \"fast\"\n    ]", "rtts_ms"},
    };
    for (const auto& e : edits) {
        SCOPED_TRACE(e.replacement);
        std::string text = base;
        const auto pos = text.find(e.needle);
        ASSERT_NE(pos, std::string::npos) << e.needle;
        text.replace(pos, std::string(e.needle).size(), e.replacement);
        try {
            parse_scenario_text(text, "<absurd>");
            FAIL() << "must reject " << e.replacement;
        } catch (const scenario_error& ex) {
            EXPECT_NE(std::string(ex.what()).find(e.key_in_msg),
                      std::string::npos)
                << ex.what();
        }
    }
}

TEST(scenario_fuzz, export_parse_export_exact_for_all_specs)
{
    // Builtins in both forms plus the WRED cell_flows spec: export must be
    // a fixpoint of parse ∘ export on bytes.
    std::vector<scenario_spec> specs;
    for (const char* name : {"fig09", "fig16", "ecn_impairment", "fault_chaos"}) {
        specs.push_back(builtin_scenario(name, false));
        specs.push_back(builtin_scenario(name, true));
    }
    specs.push_back(wred_cell_flows_spec());
    for (const auto& spec : specs) {
        SCOPED_TRACE(spec.figure);
        const std::string once = export_scenario(spec).dump();
        const auto reparsed = parse_scenario_text(once, "<rt>");
        const std::string twice = export_scenario(reparsed).dump();
        EXPECT_EQ(once, twice);
    }
}

TEST(scenario_fuzz, wred_spec_parses_back_to_wred_queue_params)
{
    const auto spec = wred_cell_flows_spec();
    const auto reparsed =
        parse_scenario_text(export_scenario(spec).dump(), "<wred>");
    const auto& w = reparsed.cell_flows.cell.wred;
    EXPECT_EQ(reparsed.cell_flows.cell.bottleneck_aqm, "wred");
    EXPECT_EQ(w.l4s.min_bytes, 4u * 1514);
    EXPECT_EQ(w.l4s.max_bytes, 32u * 1514);
    EXPECT_DOUBLE_EQ(w.classic.max_p, 0.08);
    EXPECT_EQ(w.ecn_drop_bytes, std::size_t{1} << 20);
    EXPECT_EQ(w.l4s_weight, 8);
}
