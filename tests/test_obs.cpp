// obs:: telemetry subsystem: trace-ring semantics, registry snapshot
// format, and the two determinism contracts the subsystem is built around —
// (1) tracing on/off leaves every simulated result byte-identical, and
// (2) a jobs-1 and a jobs-4 run produce byte-identical merged metric
// snapshots, trace dumps and flight-recorder incidents.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/hub.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "scenario/cell_scenario.h"
#include "scenario/topology.h"
#include "topo/fault_plan.h"

using namespace l4span;

namespace {

TEST(ObsTraceRing, OverwritesOldestAndKeepsSequence)
{
    obs::trace_ring ring;
    ring.reset(4);
    for (std::uint64_t i = 0; i < 6; ++i) {
        obs::trace_event ev{};
        ev.t = static_cast<sim::tick>(i);
        ev.b = i;
        ev.pt = static_cast<std::uint16_t>(obs::point::mac_tx);
        ring.push(ev);
    }
    EXPECT_EQ(ring.total(), 6u);   // lifetime pushes
    EXPECT_EQ(ring.size(), 4u);    // retained tail
    EXPECT_EQ(ring.capacity(), 4u);
    // at(0) is the oldest retained event: push #2 (0 and 1 were overwritten).
    EXPECT_EQ(ring.at(0).b, 2u);
    EXPECT_EQ(ring.at(3).b, 5u);
}

TEST(ObsTraceRing, EventIs32Bytes)
{
    EXPECT_EQ(sizeof(obs::trace_event), 32u);
}

TEST(ObsNames, PointAndReasonTablesAreExhaustive)
{
    for (std::uint16_t p = 0; p < static_cast<std::uint16_t>(obs::point::count); ++p)
        EXPECT_STRNE(obs::point_name(static_cast<obs::point>(p)), "?");
    for (std::uint8_t r = 0; r < static_cast<std::uint8_t>(obs::reason::count); ++r)
        EXPECT_STRNE(obs::reason_name(static_cast<obs::reason>(r)), "?");
}

TEST(ObsRegistry, SnapshotLineFormat)
{
    obs::registry reg;
    std::uint64_t hits = 41;
    reg.add_counter("m.hits", [&] { return hits; });
    reg.add_gauge("m.load", [] { return 0.5; });
    obs::histogram* h = reg.add_histogram("m.lat_ms", {1.0, 10.0});
    h->sample(0.5);
    h->sample(5.0);
    h->sample(100.0);
    ++hits;
    EXPECT_EQ(reg.metric_count(), 3u);
    const std::string line = reg.snapshot_line(sim::from_ms(7), /*shard=*/2);
    EXPECT_NE(line.find("\"m.hits\":42"), std::string::npos) << line;
    EXPECT_NE(line.find("\"m.load\":0.5"), std::string::npos) << line;
    EXPECT_NE(line.find("\"counts\":[1,1,1]"), std::string::npos) << line;
    EXPECT_NE(line.find("\"s\":2"), std::string::npos) << line;
}

// --- single-cell: tracing must not change simulated results ----------------

struct cell_result {
    std::vector<double> owd;
    double goodput = 0.0;
    std::uint64_t delivered = 0;
    std::uint64_t marks = 0;
};

cell_result run_cell(bool obs_on)
{
    scenario::cell_spec cell;
    cell.num_ues = 4;
    cell.channel = "mobile";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 77;
    cell.obs.enabled = obs_on;
    cell.obs.lifecycle_flow = 0;  // follow flow 0 end to end
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < 4; ++u) {
        scenario::flow_spec f;
        f.cca = u % 2 ? "cubic" : "prague";
        f.ue = u;
        handles.push_back(s.add_flow(f));
    }
    s.run(sim::from_sec(2));
    cell_result r;
    for (int h : handles) {
        for (double v : s.owd_ms(h).raw()) r.owd.push_back(v);
        r.goodput += s.goodput_mbps(h);
        r.delivered += s.delivered_bytes(h);
    }
    r.marks = s.l4span_layer()->marks();
    if (obs_on) {
        obs::hub* hub = s.obs_hub();
        EXPECT_NE(hub, nullptr) << "obs enabled but no hub";
        if (!hub) return r;
        const std::string trace = hub->merged_trace_text();
        // The busy cell must have hit the layer-boundary trace points and
        // the lifecycle mode must have followed flow 0.
        EXPECT_NE(trace.find("\"p\":\"rlc_enqueue\""), std::string::npos);
        EXPECT_NE(trace.find("\"p\":\"mac_tx\""), std::string::npos);
        EXPECT_NE(trace.find("\"p\":\"lifecycle\""), std::string::npos);
        EXPECT_NE(trace.find("\"p\":\"l4span_dl\""), std::string::npos);
        const std::string metrics = hub->metrics_text();
        EXPECT_NE(metrics.find("cell0.l4span.sojourn_ms"), std::string::npos);
        EXPECT_NE(metrics.find("cell0.gnb.slots"), std::string::npos);
    } else {
        EXPECT_EQ(s.obs_hub(), nullptr);
    }
    return r;
}

TEST(ObsCellScenario, TracingOnOffByteIdenticalResults)
{
    const cell_result off = run_cell(false);
    const cell_result on = run_cell(true);
    ASSERT_EQ(off.owd.size(), on.owd.size());
    for (std::size_t i = 0; i < off.owd.size(); ++i)
        ASSERT_EQ(off.owd[i], on.owd[i]) << "OWD sample " << i << " diverged";
    EXPECT_EQ(off.goodput, on.goodput);
    EXPECT_EQ(off.delivered, on.delivered);
    EXPECT_EQ(off.marks, on.marks);
}

// --- multi-cell: sharded runs must merge byte-identically ------------------

struct topo_result {
    std::string metrics;
    std::string trace;
    std::vector<std::string> incidents;
    std::uint64_t injected = 0;
};

topo_result run_chaos(int jobs)
{
    scenario::topology_spec spec;
    spec.num_cells = 3;
    spec.ues_per_cell = 2;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "static";
    spec.cell.seed = 5;
    spec.cell.obs.enabled = true;
    spec.wired_bps = 50e6;
    spec.jobs = jobs;
    scenario::topology topo(spec);
    for (int ue = 0; ue < topo.num_ues(); ++ue) {
        scenario::flow_spec f;
        f.cca = "prague";
        f.ue = ue;
        topo.add_flow(f);
    }
    topo::fault_plan_config fc;
    fc.num_cells = spec.num_cells;
    fc.ues_per_cell = spec.ues_per_cell;
    fc.start = sim::from_ms(600);
    fc.end = sim::from_ms(2200);
    fc.seed = 9;
    fc.rlf_per_ue_per_sec = 0.5;
    fc.outages_per_cell_per_sec = 0.3;
    fc.flaps_per_cell_per_sec = 0.4;
    topo.apply_faults(topo::fault_plan(fc));
    topo.run(sim::from_sec(3));

    obs::hub* hub = topo.obs_hub();
    topo_result r;
    r.metrics = hub->metrics_text();
    r.trace = hub->merged_trace_text();
    for (std::size_t i = 0; i < hub->incident_count(); ++i)
        r.incidents.push_back(hub->incident_names()[i] + "\n" +
                              hub->incident_text(i));
    for (auto cls : {topo::fault_class::rlf, topo::fault_class::cell_outage,
                     topo::fault_class::link_flap})
        r.injected += topo.faults_injected(cls);
    return r;
}

TEST(ObsTopology, ShardedRunsMergeByteIdentically)
{
    const topo_result j1 = run_chaos(1);
    const topo_result j4 = run_chaos(4);
    EXPECT_EQ(j1.metrics, j4.metrics);
    EXPECT_EQ(j1.trace, j4.trace);
    ASSERT_EQ(j1.incidents.size(), j4.incidents.size());
    for (std::size_t i = 0; i < j1.incidents.size(); ++i)
        EXPECT_EQ(j1.incidents[i], j4.incidents[i]) << "incident " << i;
    EXPECT_EQ(j1.injected, j4.injected);
}

TEST(ObsTopology, FlightRecorderCapturesFaults)
{
    const topo_result r = run_chaos(1);
    ASSERT_GT(r.injected, 0u) << "chaos plan injected nothing";
    ASSERT_FALSE(r.incidents.empty()) << "faults fired but no incident dumps";
    // Every incident dump ends at its trigger: a fault_fire event with the
    // fault-class reason, preceded by the last N events of normal traffic.
    bool saw_fault_fire = false;
    for (const auto& inc : r.incidents)
        if (inc.find("\"p\":\"fault_fire\"") != std::string::npos)
            saw_fault_fire = true;
    EXPECT_TRUE(saw_fault_fire);
    // Merged trace timestamps are non-decreasing (the (t, shard, seq) sort).
    long long prev = -1;
    std::size_t pos = 0;
    while ((pos = r.trace.find("{\"t\":", pos)) != std::string::npos) {
        const long long t = std::atoll(r.trace.c_str() + pos + 5);
        EXPECT_GE(t, prev);
        prev = t;
        ++pos;
    }
}

TEST(ObsHub, InvariantNoteRecordsIncident)
{
    obs::config cfg;
    cfg.enabled = true;
    obs::hub hub(1, cfg);
    hub.note_invariant(0, "queue_bounded", true, sim::from_ms(1));
    EXPECT_EQ(hub.incident_count(), 0u);  // passing checks only trace
    hub.note_invariant(0, "queue_bounded", false, sim::from_ms(2));
    ASSERT_EQ(hub.incident_count(), 1u);
    EXPECT_NE(hub.incident_text(0).find("\"p\":\"invariant\""),
              std::string::npos);
}

}  // namespace
