// RLC transmit/receive entities: queueing, segmentation, ARQ, feedback.
#include <gtest/gtest.h>

#include "ran/rlc.h"

#include "net/packet_pool.h"

using namespace l4span;
using namespace l4span::ran;

namespace {

pdcp_sdu mk_sdu(pdcp_sn_t sn, std::uint32_t size, sim::tick t = 0)
{
    pdcp_sdu s;
    s.sn = sn;
    s.size = size;
    s.ingress_time = t;
    s.pkt.payload_bytes = size > 28 ? size - 28 : 0;
    s.pkt.pkt_id = sn;
    return s;
}

rlc_config am_cfg(std::size_t max_sdus = 16384)
{
    rlc_config c;
    c.mode = rlc_mode::am;
    c.max_queue_sdus = max_sdus;
    return c;
}

}  // namespace

TEST(rlc_tx, enqueue_respects_queue_limit)
{
    net::packet_pool pool;
    rlc_tx tx(1, 1, am_cfg(2), pool);
    EXPECT_TRUE(tx.enqueue(mk_sdu(1, 1000), 0));
    EXPECT_TRUE(tx.enqueue(mk_sdu(2, 1000), 0));
    EXPECT_FALSE(tx.has_room());
    EXPECT_FALSE(tx.enqueue(mk_sdu(3, 1000), 0));
    EXPECT_EQ(tx.drops(), 1u);
    EXPECT_EQ(tx.queued_sdus(), 2u);
}

TEST(rlc_tx, pull_whole_sdus)
{
    net::packet_pool pool;
    rlc_tx tx(1, 1, am_cfg(), pool);
    tx.enqueue(mk_sdu(1, 1000), 0);
    tx.enqueue(mk_sdu(2, 1000), 0);
    const auto chunks = tx.pull(2500, sim::from_ms(1));
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_TRUE(chunks[0].carries_last);
    EXPECT_TRUE(chunks[1].carries_last);
    EXPECT_EQ(tx.highest_transmitted(), 2u);
    EXPECT_EQ(tx.backlog_bytes(), 0u);
}

TEST(rlc_tx, segmentation_across_grants)
{
    net::packet_pool pool;
    rlc_tx tx(1, 1, am_cfg(), pool);
    tx.enqueue(mk_sdu(1, 3000), 0);
    auto first = tx.pull(1000, 0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_FALSE(first[0].carries_last);
    EXPECT_EQ(first[0].bytes, 1000u);
    EXPECT_EQ(tx.highest_transmitted(), 0u) << "SDU not fully transmitted yet";

    auto second = tx.pull(5000, sim::from_ms(1));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].carries_last);
    EXPECT_EQ(second[0].bytes, 2000u);
    EXPECT_EQ(tx.highest_transmitted(), 1u);
    ASSERT_TRUE(static_cast<bool>(second[0].pkt)) << "packet rides the final chunk";
}

TEST(rlc_tx, emits_transmit_status)
{
    net::packet_pool pool;
    rlc_tx tx(1, 2, am_cfg(), pool);
    std::vector<dl_delivery_status> statuses;
    tx.set_status_handler([&](const dl_delivery_status& s) { statuses.push_back(s); });
    tx.enqueue(mk_sdu(1, 500), 0);
    tx.pull(1000, sim::from_ms(3));
    ASSERT_FALSE(statuses.empty());
    EXPECT_EQ(statuses.back().highest_transmitted_sn, 1u);
    EXPECT_TRUE(statuses.back().has_transmitted);
    EXPECT_FALSE(statuses.back().has_delivered);
    EXPECT_EQ(statuses.back().timestamp, sim::from_ms(3));
    EXPECT_EQ(statuses.back().drb, 2);
}

TEST(rlc_tx, delivery_confirmation_advances_watermark)
{
    net::packet_pool pool;
    rlc_tx tx(1, 1, am_cfg(), pool);
    std::vector<dl_delivery_status> statuses;
    tx.set_status_handler([&](const dl_delivery_status& s) { statuses.push_back(s); });
    for (pdcp_sn_t sn = 1; sn <= 3; ++sn) tx.enqueue(mk_sdu(sn, 500), 0);
    tx.pull(5000, 0);
    tx.on_delivery_confirmed(2, sim::from_ms(10));
    EXPECT_EQ(tx.highest_delivered(), 2u);
    EXPECT_TRUE(statuses.back().has_delivered);
    EXPECT_EQ(statuses.back().highest_delivered_sn, 2u);
    // Stale (non-advancing) ACK is ignored.
    tx.on_delivery_confirmed(1, sim::from_ms(11));
    EXPECT_EQ(tx.highest_delivered(), 2u);
}

TEST(rlc_tx, am_retransmits_lost_tb)
{
    net::packet_pool pool;
    rlc_tx tx(1, 1, am_cfg(), pool);
    tx.enqueue(mk_sdu(1, 1000), 0);
    auto chunks = tx.pull(2000, 0);
    EXPECT_EQ(tx.backlog_bytes(), 0u);
    tx.on_tb_lost(chunks, sim::from_ms(8));
    EXPECT_EQ(tx.backlog_bytes(), 1000u) << "lost SDU returns to the retx queue";
    auto retx = tx.pull(2000, sim::from_ms(9));
    ASSERT_EQ(retx.size(), 1u);
    EXPECT_TRUE(retx[0].is_retx);
    EXPECT_EQ(retx[0].sn, 1u);
}

TEST(rlc_tx, um_does_not_retransmit)
{
    rlc_config cfg;
    cfg.mode = rlc_mode::um;
    net::packet_pool pool;
    rlc_tx tx(1, 1, cfg, pool);
    tx.enqueue(mk_sdu(1, 1000), 0);
    auto chunks = tx.pull(2000, 0);
    tx.on_tb_lost(chunks, sim::from_ms(8));
    EXPECT_EQ(tx.backlog_bytes(), 0u);
}

TEST(rlc_tx, retx_gives_up_after_max_and_reports_discard)
{
    rlc_config cfg = am_cfg();
    cfg.max_rlc_retx = 2;
    net::packet_pool pool;
    rlc_tx tx(1, 1, cfg, pool);
    std::vector<pdcp_sn_t> discards;
    tx.set_discard_handler([&](pdcp_sn_t sn, sim::tick) { discards.push_back(sn); });
    tx.enqueue(mk_sdu(1, 1000), 0);
    auto chunks = tx.pull(2000, 0);
    for (int round = 0; round < 3; ++round) {
        tx.on_tb_lost(chunks, sim::from_ms(8 * (round + 1)));
        if (tx.backlog_bytes() == 0) break;
        chunks = tx.pull(2000, sim::from_ms(8 * (round + 1) + 1));
    }
    ASSERT_EQ(discards.size(), 1u);
    EXPECT_EQ(discards[0], 1u);
}

TEST(rlc_tx, delay_report_decomposes_queuing_and_scheduling)
{
    net::packet_pool pool;
    rlc_tx tx(1, 1, am_cfg(), pool);
    std::vector<sdu_delay_report> reports;
    tx.set_delay_handler([&](const sdu_delay_report& r) { reports.push_back(r); });
    tx.enqueue(mk_sdu(1, 500, sim::from_ms(0)), sim::from_ms(0));
    tx.enqueue(mk_sdu(2, 500, sim::from_ms(0)), sim::from_ms(0));
    tx.pull(600, sim::from_ms(5));   // SDU 1 leaves; SDU 2 becomes head at t=5
    tx.pull(600, sim::from_ms(9));   // SDU 2 leaves
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].queuing, 0);
    EXPECT_EQ(reports[0].scheduling, sim::from_ms(5));
    EXPECT_EQ(reports[1].queuing, sim::from_ms(5));
    EXPECT_EQ(reports[1].scheduling, sim::from_ms(4));
}

TEST(rlc_rx, am_delivers_in_order)
{
    net::packet_pool pool;
    rlc_rx rx(rlc_mode::am, pool);
    std::vector<std::uint64_t> delivered;
    std::vector<pdcp_sn_t> acks;
    rx.set_deliver_handler([&](net::packet p, sim::tick) { delivered.push_back(p.pkt_id); });
    rx.set_ack_handler([&](pdcp_sn_t sn, sim::tick) { acks.push_back(sn); });

    auto chunk = [&pool](pdcp_sn_t sn) {
        tb_chunk c;
        c.sn = sn;
        c.bytes = 100;
        c.sdu_total = 100;
        c.carries_last = true;
        net::packet p;
        p.pkt_id = sn;
        c.pkt = pool.put(std::move(p));
        return c;
    };
    rx.on_chunk(chunk(2), 0);  // out of order: held
    EXPECT_TRUE(delivered.empty());
    rx.on_chunk(chunk(1), 1);  // releases both
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(acks.back(), 2u);
}

TEST(rlc_rx, am_reassembles_segments)
{
    net::packet_pool pool;
    rlc_rx rx(rlc_mode::am, pool);
    int delivered = 0;
    rx.set_deliver_handler([&](net::packet, sim::tick) { ++delivered; });
    tb_chunk a;
    a.sn = 1;
    a.bytes = 60;
    a.sdu_total = 100;
    rx.on_chunk(a, 0);
    EXPECT_EQ(delivered, 0);
    tb_chunk b;
    b.sn = 1;
    b.bytes = 40;
    b.sdu_total = 100;
    b.carries_last = true;
    b.pkt = pool.put(net::packet{});
    rx.on_chunk(b, 1);
    EXPECT_EQ(delivered, 1);
}

TEST(rlc_rx, skip_unblocks_in_order_delivery)
{
    net::packet_pool pool;
    rlc_rx rx(rlc_mode::am, pool);
    std::vector<std::uint64_t> delivered;
    rx.set_deliver_handler([&](net::packet p, sim::tick) { delivered.push_back(p.pkt_id); });
    auto chunk = [&pool](pdcp_sn_t sn) {
        tb_chunk c;
        c.sn = sn;
        c.bytes = 100;
        c.sdu_total = 100;
        c.carries_last = true;
        net::packet p;
        p.pkt_id = sn;
        c.pkt = pool.put(std::move(p));
        return c;
    };
    rx.on_chunk(chunk(2), 0);  // SN 1 missing
    EXPECT_TRUE(delivered.empty());
    rx.skip(1, 1);  // DU discarded SN 1
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{2}));
}

TEST(rlc_rx, um_reorders_within_reassembly_window)
{
    // HARQ can reorder TBs; UM holds a gap until t-Reassembly, then skips.
    net::packet_pool pool;
    rlc_rx rx(rlc_mode::um, pool);
    std::vector<std::uint64_t> delivered;
    rx.set_deliver_handler([&](net::packet p, sim::tick) { delivered.push_back(p.pkt_id); });
    auto chunk = [&pool](pdcp_sn_t sn) {
        tb_chunk c;
        c.sn = sn;
        c.bytes = 100;
        c.sdu_total = 100;
        c.carries_last = true;
        net::packet p;
        p.pkt_id = sn;
        c.pkt = pool.put(std::move(p));
        return c;
    };
    rx.on_chunk(chunk(2), 0);  // gap: SN 1 missing, timer starts
    EXPECT_TRUE(delivered.empty());
    rx.on_chunk(chunk(1), sim::from_ms(8));  // late HARQ retx fills the gap
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 2}));
}

TEST(rlc_rx, um_skips_hole_after_t_reassembly)
{
    net::packet_pool pool;
    rlc_rx rx(rlc_mode::um, pool);
    std::vector<std::uint64_t> delivered;
    rx.set_deliver_handler([&](net::packet p, sim::tick) { delivered.push_back(p.pkt_id); });
    auto chunk = [&pool](pdcp_sn_t sn) {
        tb_chunk c;
        c.sn = sn;
        c.bytes = 100;
        c.sdu_total = 100;
        c.carries_last = true;
        net::packet p;
        p.pkt_id = sn;
        c.pkt = pool.put(std::move(p));
        return c;
    };
    rx.on_chunk(chunk(2), 0);  // SN 1 lost for good
    EXPECT_TRUE(delivered.empty());
    rx.on_chunk(chunk(3), sim::from_ms(50));  // past the 35 ms deadline
    EXPECT_EQ(delivered, (std::vector<std::uint64_t>{2, 3}));
}
