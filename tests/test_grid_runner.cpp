// grid_runner: thread-count-independent determinism, ordering, error
// propagation — plus event-loop slab stress: cancel-after-fire, id
// recycling, equal-time FIFO under the pooled heap, and memory boundedness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "scenario/cell_scenario.h"
#include "scenario/grid_runner.h"
#include "sim/event_loop.h"

using namespace l4span;

namespace {

// A small but real scenario: 2 UEs, 1.5 s, prague + cubic. Returns the full
// metric streams so equality means bit-identical simulation, not just
// similar summaries.
struct point_metrics {
    std::vector<double> owd;
    std::vector<double> rtt;
    double goodput[2];
    std::uint64_t events;
};

point_metrics run_point(std::size_t i)
{
    scenario::cell_spec cell;
    cell.num_ues = 2;
    cell.channel = i % 2 ? "mobile" : "static";
    cell.cu = scenario::cu_mode::l4span;
    cell.seed = 100 + i;
    scenario::cell_scenario s(cell);
    std::vector<int> handles;
    for (int u = 0; u < 2; ++u) {
        scenario::flow_spec f;
        f.cca = u ? "cubic" : "prague";
        f.ue = u;
        handles.push_back(s.add_flow(f));
    }
    s.run(sim::from_sec(1.5));
    point_metrics m;
    for (int h : handles) {
        for (double v : s.owd_ms(h).raw()) m.owd.push_back(v);
        for (double v : s.rtt_ms(h).raw()) m.rtt.push_back(v);
        m.goodput[h] = s.goodput_mbps(h);
    }
    m.events = s.loop().processed();
    return m;
}

}  // namespace

TEST(grid_runner, results_in_input_order)
{
    scenario::grid_runner pool(8);
    const auto out = pool.map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(grid_runner, one_thread_and_n_threads_identical_metric_streams)
{
    scenario::grid_runner serial(1);
    scenario::grid_runner parallel(4);
    const auto a = serial.map(4, run_point);
    const auto b = parallel.map(4, run_point);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].owd, b[i].owd) << "point " << i;
        EXPECT_EQ(a[i].rtt, b[i].rtt) << "point " << i;
        EXPECT_EQ(a[i].goodput[0], b[i].goodput[0]) << "point " << i;
        EXPECT_EQ(a[i].goodput[1], b[i].goodput[1]) << "point " << i;
        EXPECT_EQ(a[i].events, b[i].events) << "point " << i;
        EXPECT_FALSE(a[i].owd.empty()) << "point " << i << " produced no samples";
    }
}

TEST(grid_runner, all_indices_run_exactly_once)
{
    scenario::grid_runner pool(8);
    std::vector<std::atomic<int>> hits(257);
    pool.run_indexed(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(grid_runner, job_exception_propagates_to_caller)
{
    scenario::grid_runner pool(4);
    EXPECT_THROW(pool.run_indexed(16,
                                  [](std::size_t i) {
                                      if (i == 7) throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(grid_runner, jobs_resolution)
{
    EXPECT_EQ(scenario::grid_runner(3).jobs(), 3);
    EXPECT_GE(scenario::grid_runner(0).jobs(), 1);  // default_jobs fallback
    EXPECT_GE(scenario::default_jobs(), 1);
}

// --- event-loop slab / generation-counter stress ----------------------------

TEST(event_loop_slab, memory_bounded_by_pending_not_total)
{
    sim::event_loop loop;
    int fired = 0;
    // 100k sequential schedule+fire cycles: only one event is ever pending,
    // so the slab must stay at a single-digit slot count.
    for (int i = 0; i < 100'000; ++i) {
        loop.schedule_after(1, [&] { ++fired; });
        loop.run_one();
    }
    EXPECT_EQ(fired, 100'000);
    EXPECT_EQ(loop.pending(), 0u);
    EXPECT_LE(loop.slab_slots(), 4u);
    EXPECT_EQ(loop.free_slots(), loop.slab_slots());
}

TEST(event_loop_slab, cancelled_slots_are_reclaimed)
{
    sim::event_loop loop;
    // Repeated schedule+cancel must recycle the same slot, not grow an index
    // for the lifetime of the run (the old weak_ptr map grew unboundedly).
    for (int i = 0; i < 50'000; ++i) loop.cancel(loop.schedule_after(1000, [] {}));
    EXPECT_EQ(loop.pending(), 0u);
    EXPECT_LE(loop.slab_slots(), 4u);
    loop.run();
    EXPECT_EQ(loop.processed(), 0u);
}

TEST(event_loop_slab, slab_tracks_peak_pending)
{
    sim::event_loop loop;
    for (int i = 0; i < 1000; ++i) loop.schedule_at(i, [] {});
    EXPECT_EQ(loop.pending(), 1000u);
    EXPECT_EQ(loop.slab_slots(), 1000u);
    loop.run();
    EXPECT_EQ(loop.pending(), 0u);
    // Slots persist for reuse but none are live.
    EXPECT_EQ(loop.free_slots(), loop.slab_slots());
}

TEST(event_loop_slab, cancel_after_fire_is_noop)
{
    sim::event_loop loop;
    int fired = 0;
    const auto id = loop.schedule_at(1, [&] { ++fired; });
    loop.run();
    EXPECT_EQ(fired, 1);
    loop.cancel(id);  // stale id: slot already reclaimed
    EXPECT_EQ(loop.pending(), 0u);
    // The slot may be recycled by a fresh event; the stale cancel must not
    // touch it.
    int fresh = 0;
    loop.schedule_after(1, [&] { ++fresh; });
    loop.cancel(id);
    loop.run();
    EXPECT_EQ(fresh, 1);
}

TEST(event_loop_slab, recycled_slot_gets_distinct_id)
{
    sim::event_loop loop;
    const auto a = loop.schedule_at(1, [] {});
    loop.run();
    const auto b = loop.schedule_at(2, [] {});  // same slot, bumped generation
    EXPECT_NE(a, b);
    EXPECT_NE(b, 0u);  // id 0 stays reserved as the "no event" sentinel
    loop.cancel(a);    // stale
    EXPECT_EQ(loop.pending(), 1u);
    loop.cancel(b);
    EXPECT_EQ(loop.pending(), 0u);
}

TEST(event_loop_slab, double_cancel_is_noop)
{
    sim::event_loop loop;
    int fired = 0;
    const auto id = loop.schedule_at(1, [&] { ++fired; });
    loop.schedule_at(2, [&] { ++fired; });
    loop.cancel(id);
    loop.cancel(id);
    EXPECT_EQ(loop.pending(), 1u);
    loop.run();
    EXPECT_EQ(fired, 1);
}

TEST(event_loop_slab, equal_time_fifo_survives_interleaved_cancels)
{
    sim::event_loop loop;
    std::vector<int> order;
    std::vector<sim::event_loop::event_id> ids;
    for (int i = 0; i < 64; ++i)
        ids.push_back(loop.schedule_at(5, [&order, i] { order.push_back(i); }));
    // Cancel every third event; the survivors must still fire in schedule
    // order even though cancels punched holes in the slab and heap.
    std::vector<int> expect;
    for (int i = 0; i < 64; ++i) {
        if (i % 3 == 0)
            loop.cancel(ids[static_cast<std::size_t>(i)]);
        else
            expect.push_back(i);
    }
    loop.run();
    EXPECT_EQ(order, expect);
}

TEST(event_loop_slab, self_cancel_from_handler_is_noop)
{
    sim::event_loop loop;
    sim::event_loop::event_id self = 0;
    int later = 0;
    self = loop.schedule_at(1, [&] {
        loop.cancel(self);  // own id: already fired, must not hurt anything
        loop.schedule_after(1, [&] { ++later; });
    });
    loop.run();
    EXPECT_EQ(later, 1);
}

TEST(event_loop_slab, heavy_random_churn_stays_consistent)
{
    sim::event_loop loop;
    std::uint64_t fired = 0;
    std::vector<sim::event_loop::event_id> live;
    std::uint64_t state = 42;
    auto rnd = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    std::size_t scheduled = 0, cancelled = 0;
    for (int step = 0; step < 200'000; ++step) {
        const auto choice = rnd() % 4;
        if (choice < 2) {
            live.push_back(loop.schedule_after(static_cast<sim::tick>(rnd() % 1000),
                                               [&fired] { ++fired; }));
            ++scheduled;
        } else if (choice == 2 && !live.empty()) {
            const auto idx = rnd() % live.size();
            const auto before = loop.pending();
            loop.cancel(live[idx]);  // may already have fired: both paths valid
            if (loop.pending() < before) ++cancelled;  // was still pending
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
            loop.run_one();
        }
    }
    loop.run();
    EXPECT_EQ(loop.pending(), 0u);
    // Every scheduled event either fired or was cancelled while pending.
    EXPECT_EQ(fired + cancelled, scheduled);
    EXPECT_EQ(loop.processed(), fired);
    // Slab bounded by peak pending (~live set), far below total scheduled.
    EXPECT_LT(loop.slab_slots(), scheduled / 4);
}

TEST(event_loop_slab, large_capture_falls_back_to_heap_and_still_runs)
{
    sim::event_loop loop;
    // Capture larger than the SBO buffer (cold path, but must be correct).
    std::vector<double> big(64, 1.5);
    double sum = 0.0;
    loop.schedule_at(1, [big, &sum] {
        for (double v : big) sum += v;
    });
    loop.run();
    EXPECT_DOUBLE_EQ(sum, 96.0);
}
