// FIFO, CoDel / ECN-CoDel, DualPi2.
#include <gtest/gtest.h>

#include "aqm/codel.h"
#include "aqm/dualpi2.h"
#include "aqm/fifo.h"

using namespace l4span;
using namespace l4span::aqm;

namespace {

net::packet mk(net::ecn e, std::uint32_t payload = 1400)
{
    net::packet p;
    p.ft.proto = net::ip_proto::udp;
    p.ecn_field = e;
    p.payload_bytes = payload;
    return p;
}

}  // namespace

TEST(fifo, order_and_byte_accounting)
{
    fifo_queue q(10000);
    EXPECT_TRUE(q.enqueue(mk(net::ecn::not_ect, 100), 0));
    EXPECT_TRUE(q.enqueue(mk(net::ecn::not_ect, 200), 0));
    EXPECT_EQ(q.byte_count(), 100u + 200u + 2 * 28);
    auto a = q.dequeue(0);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->payload_bytes, 100u);
    auto b = q.dequeue(0);
    ASSERT_TRUE(b);
    EXPECT_EQ(b->payload_bytes, 200u);
    EXPECT_FALSE(q.dequeue(0));
}

TEST(fifo, tail_drop_at_limit)
{
    fifo_queue q(3000);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) accepted += q.enqueue(mk(net::ecn::not_ect), 0) ? 1 : 0;
    EXPECT_EQ(accepted, 2);  // 2 x 1428 fits, third would exceed 3000
    EXPECT_EQ(q.drops(), 8u);
}

TEST(codel, passes_uncongested_traffic)
{
    codel_queue q;
    for (int i = 0; i < 100; ++i) {
        q.enqueue(mk(net::ecn::ect0), sim::from_ms(i));
        auto p = q.dequeue(sim::from_ms(i) + sim::from_ms(1));  // 1 ms sojourn
        ASSERT_TRUE(p);
        EXPECT_EQ(p->ecn_field, net::ecn::ect0) << "no marks below target";
    }
    EXPECT_EQ(q.drops(), 0u);
    EXPECT_EQ(q.marks(), 0u);
}

TEST(codel, drops_when_sojourn_persists_above_target)
{
    codel_queue q;
    sim::tick t = 0;
    // Fill, then dequeue far slower than enqueue so sojourn >> 5 ms for > interval.
    for (int i = 0; i < 400; ++i) q.enqueue(mk(net::ecn::not_ect), t + i * sim::from_ms(1));
    std::size_t got = 0;
    for (int i = 0; i < 400; ++i) {
        if (q.dequeue(sim::from_ms(400) + i * sim::from_ms(20))) ++got;
        if (q.packet_count() == 0) break;
    }
    EXPECT_GT(q.drops(), 0u) << "CoDel must shed persistent queue";
}

TEST(codel, ecn_mode_marks_instead_of_dropping)
{
    codel_config cfg;
    cfg.ecn_mode = true;
    codel_queue q(cfg);
    for (int i = 0; i < 400; ++i) q.enqueue(mk(net::ecn::ect1), i * sim::from_ms(1));
    std::uint64_t ce = 0;
    for (int i = 0; i < 400; ++i) {
        auto p = q.dequeue(sim::from_ms(400) + i * sim::from_ms(20));
        if (p && p->ecn_field == net::ecn::ce) ++ce;
        if (q.packet_count() == 0) break;
    }
    EXPECT_GT(ce, 0u);
    EXPECT_EQ(q.drops(), 0u) << "ECT packets are marked, not dropped";
}

TEST(dualpi2, classifies_by_ect_codepoint)
{
    dualpi2_queue q;
    q.enqueue(mk(net::ecn::ect1), 0);  // L queue
    q.enqueue(mk(net::ecn::ect0), 0);  // C queue
    EXPECT_EQ(q.packet_count(), 2u);
    // L-queue priority: the ECT(1) packet leaves first.
    auto p = q.dequeue(sim::from_us(100));
    ASSERT_TRUE(p);
    EXPECT_TRUE(p->ecn_field == net::ecn::ect1 || p->ecn_field == net::ecn::ce);
}

TEST(dualpi2, step_marks_l4s_above_threshold)
{
    dualpi2_queue q;
    q.enqueue(mk(net::ecn::ect1), 0);
    auto p = q.dequeue(sim::from_ms(5));  // sojourn 5 ms > 1 ms step
    ASSERT_TRUE(p);
    EXPECT_EQ(p->ecn_field, net::ecn::ce);
    EXPECT_EQ(q.marks(), 1u);
}

TEST(dualpi2, no_mark_below_step)
{
    dualpi2_queue q;
    q.enqueue(mk(net::ecn::ect1), 0);
    auto p = q.dequeue(sim::from_us(300));  // 0.3 ms < 1 ms step
    ASSERT_TRUE(p);
    EXPECT_EQ(p->ecn_field, net::ecn::ect1);
}

TEST(dualpi2, pi_pressure_rises_with_standing_classic_queue)
{
    dualpi2_queue q;
    sim::tick now = 0;
    // Keep a standing classic queue for half a second of updates.
    for (int i = 0; i < 500; ++i) {
        now = i * sim::from_ms(1);
        q.enqueue(mk(net::ecn::ect0), now);
        if (i % 4 == 0) q.dequeue(now);  // drain slower than arrival
    }
    EXPECT_GT(q.base_probability(), 0.0);
}

TEST(dualpi2, classic_starvation_guard)
{
    // With both queues backlogged, classic packets still get through.
    dualpi2_queue q;
    for (int i = 0; i < 50; ++i) {
        q.enqueue(mk(net::ecn::ect1), 0);
        q.enqueue(mk(net::ecn::ect0), 0);
    }
    int classic_seen = 0;
    for (int i = 0; i < 40; ++i) {
        auto p = q.dequeue(sim::from_us(i * 10));
        if (p && p->ecn_field == net::ecn::ect0) ++classic_seen;
    }
    EXPECT_GT(classic_seen, 0) << "WRR must not starve the classic queue";
}
