// FIFO, CoDel / ECN-CoDel, DualPi2.
#include <gtest/gtest.h>

#include "aqm/codel.h"
#include "aqm/dualpi2.h"
#include "aqm/fifo.h"
#include "aqm/wred_dualq.h"

using namespace l4span;
using namespace l4span::aqm;

namespace {

net::packet mk(net::ecn e, std::uint32_t payload = 1400)
{
    net::packet p;
    p.ft.proto = net::ip_proto::udp;
    p.ecn_field = e;
    p.payload_bytes = payload;
    return p;
}

}  // namespace

TEST(fifo, order_and_byte_accounting)
{
    fifo_queue q(10000);
    EXPECT_TRUE(q.enqueue(mk(net::ecn::not_ect, 100), 0));
    EXPECT_TRUE(q.enqueue(mk(net::ecn::not_ect, 200), 0));
    EXPECT_EQ(q.byte_count(), 100u + 200u + 2 * 28);
    auto a = q.dequeue(0);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->payload_bytes, 100u);
    auto b = q.dequeue(0);
    ASSERT_TRUE(b);
    EXPECT_EQ(b->payload_bytes, 200u);
    EXPECT_FALSE(q.dequeue(0));
}

TEST(fifo, tail_drop_at_limit)
{
    fifo_queue q(3000);
    int accepted = 0;
    for (int i = 0; i < 10; ++i) accepted += q.enqueue(mk(net::ecn::not_ect), 0) ? 1 : 0;
    EXPECT_EQ(accepted, 2);  // 2 x 1428 fits, third would exceed 3000
    EXPECT_EQ(q.drops(), 8u);
}

TEST(codel, passes_uncongested_traffic)
{
    codel_queue q;
    for (int i = 0; i < 100; ++i) {
        q.enqueue(mk(net::ecn::ect0), sim::from_ms(i));
        auto p = q.dequeue(sim::from_ms(i) + sim::from_ms(1));  // 1 ms sojourn
        ASSERT_TRUE(p);
        EXPECT_EQ(p->ecn_field, net::ecn::ect0) << "no marks below target";
    }
    EXPECT_EQ(q.drops(), 0u);
    EXPECT_EQ(q.marks(), 0u);
}

TEST(codel, drops_when_sojourn_persists_above_target)
{
    codel_queue q;
    sim::tick t = 0;
    // Fill, then dequeue far slower than enqueue so sojourn >> 5 ms for > interval.
    for (int i = 0; i < 400; ++i) q.enqueue(mk(net::ecn::not_ect), t + i * sim::from_ms(1));
    std::size_t got = 0;
    for (int i = 0; i < 400; ++i) {
        if (q.dequeue(sim::from_ms(400) + i * sim::from_ms(20))) ++got;
        if (q.packet_count() == 0) break;
    }
    EXPECT_GT(q.drops(), 0u) << "CoDel must shed persistent queue";
}

TEST(codel, ecn_mode_marks_instead_of_dropping)
{
    codel_config cfg;
    cfg.ecn_mode = true;
    codel_queue q(cfg);
    for (int i = 0; i < 400; ++i) q.enqueue(mk(net::ecn::ect1), i * sim::from_ms(1));
    std::uint64_t ce = 0;
    for (int i = 0; i < 400; ++i) {
        auto p = q.dequeue(sim::from_ms(400) + i * sim::from_ms(20));
        if (p && p->ecn_field == net::ecn::ce) ++ce;
        if (q.packet_count() == 0) break;
    }
    EXPECT_GT(ce, 0u);
    EXPECT_EQ(q.drops(), 0u) << "ECT packets are marked, not dropped";
}

TEST(dualpi2, classifies_by_ect_codepoint)
{
    dualpi2_queue q;
    q.enqueue(mk(net::ecn::ect1), 0);  // L queue
    q.enqueue(mk(net::ecn::ect0), 0);  // C queue
    EXPECT_EQ(q.packet_count(), 2u);
    // L-queue priority: the ECT(1) packet leaves first.
    auto p = q.dequeue(sim::from_us(100));
    ASSERT_TRUE(p);
    EXPECT_TRUE(p->ecn_field == net::ecn::ect1 || p->ecn_field == net::ecn::ce);
}

TEST(dualpi2, step_marks_l4s_above_threshold)
{
    dualpi2_queue q;
    q.enqueue(mk(net::ecn::ect1), 0);
    auto p = q.dequeue(sim::from_ms(5));  // sojourn 5 ms > 1 ms step
    ASSERT_TRUE(p);
    EXPECT_EQ(p->ecn_field, net::ecn::ce);
    EXPECT_EQ(q.marks(), 1u);
}

TEST(dualpi2, no_mark_below_step)
{
    dualpi2_queue q;
    q.enqueue(mk(net::ecn::ect1), 0);
    auto p = q.dequeue(sim::from_us(300));  // 0.3 ms < 1 ms step
    ASSERT_TRUE(p);
    EXPECT_EQ(p->ecn_field, net::ecn::ect1);
}

TEST(dualpi2, pi_pressure_rises_with_standing_classic_queue)
{
    dualpi2_queue q;
    sim::tick now = 0;
    // Keep a standing classic queue for half a second of updates.
    for (int i = 0; i < 500; ++i) {
        now = i * sim::from_ms(1);
        q.enqueue(mk(net::ecn::ect0), now);
        if (i % 4 == 0) q.dequeue(now);  // drain slower than arrival
    }
    EXPECT_GT(q.base_probability(), 0.0);
}

TEST(dualpi2, classic_starvation_guard)
{
    // With both queues backlogged, classic packets still get through.
    dualpi2_queue q;
    for (int i = 0; i < 50; ++i) {
        q.enqueue(mk(net::ecn::ect1), 0);
        q.enqueue(mk(net::ecn::ect0), 0);
    }
    int classic_seen = 0;
    for (int i = 0; i < 40; ++i) {
        auto p = q.dequeue(sim::from_us(i * 10));
        if (p && p->ecn_field == net::ecn::ect0) ++classic_seen;
    }
    EXPECT_GT(classic_seen, 0) << "WRR must not starve the classic queue";
}

// --- WRED dual-queue (schema-only AQM, scenario/scenario_spec) --------------

TEST(wred_dualq, below_min_never_fires)
{
    wred_dualq_config cfg;
    cfg.l4s = {10 * 1428, 100 * 1428, 1.0};
    cfg.classic = {10 * 1428, 100 * 1428, 1.0};
    wred_dualq_queue q(cfg);
    for (int i = 0; i < 9; ++i) {
        EXPECT_TRUE(q.enqueue(mk(net::ecn::ect1), 0));
        EXPECT_TRUE(q.enqueue(mk(net::ecn::ect0), 0));
    }
    EXPECT_EQ(q.marks(), 0u);
    EXPECT_EQ(q.drops(), 0u);
    EXPECT_DOUBLE_EQ(q.l4s_probability(), 0.0);
    EXPECT_DOUBLE_EQ(q.classic_probability(), 0.0);
}

TEST(wred_dualq, ramp_rises_and_saturates)
{
    wred_dualq_config cfg;
    cfg.l4s = {2 * 1428, 10 * 1428, 1.0};
    cfg.ecn_drop_bytes = 0;  // isolate the ramp
    wred_dualq_queue q(cfg);
    double last = -1.0;
    for (int i = 0; i < 12; ++i) {
        const double p = q.l4s_probability();
        EXPECT_GE(p, last) << "ramp must be monotone in occupancy";
        last = p;
        q.enqueue(mk(net::ecn::ect1), 0);
    }
    EXPECT_DOUBLE_EQ(q.l4s_probability(), 1.0) << "at/above max_bytes: max_p";
    EXPECT_GT(q.marks(), 0u) << "certain marking above the ramp end";
}

TEST(wred_dualq, classifies_by_ect_codepoint)
{
    wred_dualq_config cfg;
    cfg.l4s = {1 << 20, 2 << 20, 1.0};  // ramps out of reach
    cfg.classic = {1 << 20, 2 << 20, 1.0};
    wred_dualq_queue q(cfg);
    q.enqueue(mk(net::ecn::ect1), 0);
    q.enqueue(mk(net::ecn::ce), 0);
    q.enqueue(mk(net::ecn::ect0), 0);
    q.enqueue(mk(net::ecn::not_ect), 0);
    EXPECT_EQ(q.l4s_bytes(), 2u * 1428);
    EXPECT_EQ(q.classic_bytes(), 2u * 1428);
}

TEST(wred_dualq, marks_ect_drops_not_ect)
{
    wred_dualq_config cfg;
    cfg.classic = {0, 0, 1.0};  // min == max == 0: ramp is max_p at any occupancy
    cfg.l4s = {1 << 20, 2 << 20, 1.0};
    cfg.ecn_drop_bytes = 0;
    wred_dualq_queue q(cfg);
    EXPECT_TRUE(q.enqueue(mk(net::ecn::ect0), 0)) << "ECT is marked, not dropped";
    auto p = q.dequeue(0);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->ecn_field, net::ecn::ce);
    EXPECT_EQ(q.marks(), 1u);
    EXPECT_FALSE(q.enqueue(mk(net::ecn::not_ect), 0)) << "Not-ECT can only drop";
    EXPECT_EQ(q.drops(), 1u);
}

TEST(wred_dualq, ecn_drop_point_drops_even_ect)
{
    wred_dualq_config cfg;
    cfg.l4s = {1 << 20, 2 << 20, 1.0};  // per-queue ramps out of reach
    cfg.classic = {1 << 20, 2 << 20, 1.0};
    cfg.ecn_drop_bytes = 4 * 1428;
    wred_dualq_queue q(cfg);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(mk(net::ecn::ect1), 0));
    EXPECT_FALSE(q.enqueue(mk(net::ecn::ect1), 0))
        << "past ecn_drop_bytes marking is no longer trusted";
    EXPECT_EQ(q.drops(), 1u);
    EXPECT_EQ(q.marks(), 0u);
}

TEST(wred_dualq, tail_drop_at_max_bytes)
{
    wred_dualq_config cfg;
    cfg.l4s = {1 << 20, 2 << 20, 1.0};
    cfg.classic = {1 << 20, 2 << 20, 1.0};
    cfg.ecn_drop_bytes = 0;
    cfg.max_bytes = 3 * 1428;
    wred_dualq_queue q(cfg);
    EXPECT_TRUE(q.enqueue(mk(net::ecn::ect1), 0));
    EXPECT_TRUE(q.enqueue(mk(net::ecn::ect0), 0));
    EXPECT_TRUE(q.enqueue(mk(net::ecn::ect1), 0));
    EXPECT_FALSE(q.enqueue(mk(net::ecn::ect0), 0));
    EXPECT_EQ(q.drops(), 1u);
}

TEST(wred_dualq, wrr_prefers_l4s_without_starving_classic)
{
    wred_dualq_config cfg;
    cfg.l4s = {1 << 20, 2 << 20, 1.0};
    cfg.classic = {1 << 20, 2 << 20, 1.0};
    cfg.l4s_weight = 4;
    wred_dualq_queue q(cfg);
    for (int i = 0; i < 20; ++i) {
        q.enqueue(mk(net::ecn::ect1), 0);
        q.enqueue(mk(net::ecn::ect0), 0);
    }
    int l4s_first = 0;
    for (int i = 0; i < 5; ++i) {
        auto p = q.dequeue(0);
        ASSERT_TRUE(p);
        if (p->ecn_field == net::ecn::ect1) ++l4s_first;
    }
    EXPECT_EQ(l4s_first, 4) << "l4s_weight L packets, then one classic";
}

TEST(wred_dualq, deterministic_for_fixed_seed)
{
    wred_dualq_config cfg;
    cfg.l4s = {1428, 20 * 1428, 0.5};
    cfg.classic = {1428, 20 * 1428, 0.5};
    cfg.seed = 1234;
    wred_dualq_queue a(cfg), b(cfg);
    for (int i = 0; i < 200; ++i) {
        const net::ecn e = (i % 3 == 0) ? net::ecn::ect0 : net::ecn::ect1;
        EXPECT_EQ(a.enqueue(mk(e), i), b.enqueue(mk(e), i));
        if (i % 2 == 0) {
            auto pa = a.dequeue(i), pb = b.dequeue(i);
            ASSERT_EQ(static_cast<bool>(pa), static_cast<bool>(pb));
            if (pa) {
                EXPECT_EQ(pa->ecn_field, pb->ecn_field);
            }
        }
    }
    EXPECT_EQ(a.marks(), b.marks());
    EXPECT_EQ(a.drops(), b.drops());
}

TEST(wred_dualq, config_validation_names_the_knob)
{
    wred_dualq_config bad;
    bad.l4s = {100, 50, 1.0};  // max < min
    try {
        wred_dualq_queue q(bad);
        FAIL() << "inverted ramp must be rejected";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(".l4s"), std::string::npos) << e.what();
    }
    wred_dualq_config bad2;
    bad2.classic.max_p = 1.5;
    EXPECT_THROW(wred_dualq_queue{bad2}, std::invalid_argument);
    wred_dualq_config bad3;
    bad3.l4s_weight = 0;
    EXPECT_THROW(wred_dualq_queue{bad3}, std::invalid_argument);
}
