// gNB end-to-end: DL path through PDCP/RLC/MAC/HARQ to the UE, F1-U
// feedback, uplink return path.
#include <gtest/gtest.h>

#include "ran/gnb.h"

using namespace l4span;
using namespace l4span::ran;

namespace {

net::packet data_packet(std::uint32_t payload, std::uint64_t id = 1)
{
    net::packet p;
    p.ft.proto = net::ip_proto::udp;
    p.payload_bytes = payload;
    p.pkt_id = id;
    p.sent_time = 0;
    return p;
}

struct test_rig {
    sim::event_loop loop;
    std::unique_ptr<gnb> g;
    std::vector<net::packet> delivered;
    std::vector<net::packet> uplinked;
    std::vector<dl_delivery_status> statuses;

    struct hook : cu_hook {
        test_rig* rig;
        explicit hook(test_rig* r) : rig(r) {}
        bool on_dl_packet(net::packet&, rnti_t, drb_id_t, pdcp_sn_t, sim::tick) override
        {
            return true;
        }
        bool on_ul_packet(net::packet&, rnti_t, sim::tick) override { return true; }
        void on_delivery_status(const dl_delivery_status& st, sim::tick) override
        {
            rig->statuses.push_back(st);
        }
    };
    hook h{this};

    explicit test_rig(rlc_config rlc = {}, gnb_config cfg = {})
    {
        g = std::make_unique<gnb>(loop, cfg, sim::rng(5));
        const rnti_t ue = g->add_ue(chan::channel_profile::static_channel());
        g->add_drb(ue, rlc);
        g->set_cu_hook(&h);
        g->set_deliver_handler([this](rnti_t, drb_id_t, net::packet p, sim::tick) {
            delivered.push_back(std::move(p));
        });
        g->set_uplink_handler([this](rnti_t, net::packet p, sim::tick) {
            uplinked.push_back(std::move(p));
        });
        g->start();
    }
};

}  // namespace

TEST(gnb, delivers_downlink_to_ue)
{
    test_rig rig;
    for (int i = 0; i < 20; ++i) rig.g->deliver_downlink(data_packet(1400, i), 1, 1);
    rig.loop.run_until(sim::from_ms(100));
    EXPECT_EQ(rig.delivered.size(), 20u);
}

TEST(gnb, preserves_order_in_am)
{
    test_rig rig;
    for (std::uint64_t i = 0; i < 200; ++i) rig.g->deliver_downlink(data_packet(1400, i), 1, 1);
    rig.loop.run_until(sim::from_sec(2));
    ASSERT_EQ(rig.delivered.size(), 200u);
    for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(rig.delivered[i].pkt_id, i);
}

TEST(gnb, emits_f1u_transmit_and_delivery_feedback)
{
    test_rig rig;
    for (int i = 0; i < 10; ++i) rig.g->deliver_downlink(data_packet(1400, i), 1, 1);
    rig.loop.run_until(sim::from_ms(200));
    ASSERT_FALSE(rig.statuses.empty());
    bool any_txed = false, any_delivered = false;
    for (const auto& st : rig.statuses) {
        if (st.has_transmitted) any_txed = true;
        if (st.has_delivered) any_delivered = true;
    }
    EXPECT_TRUE(any_txed);
    EXPECT_TRUE(any_delivered) << "RLC AM must confirm delivery";
    EXPECT_EQ(rig.statuses.back().highest_delivered_sn, 10u);
}

TEST(gnb, um_mode_reports_transmit_only)
{
    rlc_config cfg;
    cfg.mode = rlc_mode::um;
    test_rig rig(cfg);
    for (int i = 0; i < 10; ++i) rig.g->deliver_downlink(data_packet(1400, i), 1, 1);
    rig.loop.run_until(sim::from_ms(200));
    ASSERT_FALSE(rig.statuses.empty());
    for (const auto& st : rig.statuses) EXPECT_FALSE(st.has_delivered);
    EXPECT_GE(rig.delivered.size(), 9u) << "UM still delivers (HARQ hides most loss)";
}

TEST(gnb, queue_overflow_drops_at_admission)
{
    rlc_config cfg;
    cfg.max_queue_sdus = 8;
    test_rig rig(cfg);
    for (int i = 0; i < 100; ++i) rig.g->deliver_downlink(data_packet(1400, i), 1, 1);
    // Queue admits only 8 before the MAC drains anything (first slot at 0.5 ms).
    EXPECT_LE(rig.g->rlc(1, 1).queued_sdus(), 8u);
    rig.loop.run_until(sim::from_ms(100));
    EXPECT_LT(rig.delivered.size(), 100u);
    EXPECT_GE(rig.delivered.size(), 8u);
}

TEST(gnb, uplink_reaches_core_in_order)
{
    test_rig rig;
    for (std::uint64_t i = 0; i < 50; ++i) {
        net::packet ack;
        ack.ft.proto = net::ip_proto::tcp;
        ack.tcp = net::tcp_header{};
        ack.tcp->flags.ack = true;
        ack.pkt_id = i;
        rig.g->send_uplink(1, std::move(ack));
    }
    rig.loop.run_until(sim::from_ms(100));
    ASSERT_EQ(rig.uplinked.size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(rig.uplinked[i].pkt_id, i);
}

TEST(gnb, uplink_waits_for_ul_slot)
{
    test_rig rig;
    net::packet ack;
    ack.ft.proto = net::ip_proto::udp;
    rig.g->send_uplink(1, std::move(ack));
    rig.loop.run_until(sim::from_us(100));
    EXPECT_TRUE(rig.uplinked.empty()) << "no UL opportunity yet";
    rig.loop.run_until(sim::from_ms(20));
    EXPECT_EQ(rig.uplinked.size(), 1u);
}

TEST(gnb, throughput_close_to_calibrated_capacity)
{
    test_rig rig;
    // Saturate: a deep backlog, then measure delivered bytes over 2 s.
    for (int i = 0; i < 12000; ++i) rig.g->deliver_downlink(data_packet(1400, i), 1, 1);
    rig.loop.run_until(sim::from_sec(2));
    std::uint64_t bytes = 0;
    for (const auto& p : rig.delivered) bytes += p.payload_bytes;
    const double mbps = static_cast<double>(bytes) * 8.0 / 2.0 / 1e6;
    EXPECT_GT(mbps, 28.0) << "calibrated cell should carry ~40 Mbit/s";
    EXPECT_LT(mbps, 50.0);
}

TEST(gnb, unknown_rnti_throws)
{
    test_rig rig;
    EXPECT_THROW(rig.g->rlc(99, 1), std::out_of_range);
}
