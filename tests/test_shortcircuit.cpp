// Feedback short-circuiting (§4.4): AccECN rewrite, classic ECE latch/CWR,
// RTT* estimation from the handshake.
#include <gtest/gtest.h>

#include "core/l4span.h"

using namespace l4span;
using namespace l4span::core;

namespace {

net::five_tuple dl_ft(std::uint16_t dport = 5000)
{
    return {0x0a000001, 0xc0a80001, 443, dport, net::ip_proto::tcp};
}

net::packet tcp_syn(bool accecn)
{
    net::packet p;
    p.ft = dl_ft();
    p.tcp = net::tcp_header{};
    p.tcp->flags.syn = true;
    p.tcp->flags.cwr = p.tcp->flags.ece = true;
    p.tcp->flags.ae = accecn;
    return p;
}

net::packet tcp_hs_ack()
{
    net::packet p;
    p.ft = dl_ft();
    p.tcp = net::tcp_header{};
    p.tcp->flags.ack = true;
    return p;
}

net::packet tcp_data(net::ecn e, std::uint32_t payload = 1400)
{
    net::packet p;
    p.ft = dl_ft();
    p.ecn_field = e;
    p.tcp = net::tcp_header{};
    p.payload_bytes = payload;
    return p;
}

net::packet ul_ack(bool accecn_fields = false)
{
    net::packet p;
    p.ft = dl_ft().reversed();
    p.tcp = net::tcp_header{};
    p.tcp->flags.ack = true;
    if (accecn_fields) p.tcp->accecn.present = true;
    return p;
}

ran::dl_delivery_status status(ran::pdcp_sn_t txed, sim::tick ts)
{
    ran::dl_delivery_status st;
    st.ue = 1;
    st.drb = 1;
    st.highest_transmitted_sn = txed;
    st.has_transmitted = true;
    st.timestamp = ts;
    return st;
}

// Warm the estimator (keeping one SDU outstanding so the service counts as
// backlogged), then build a deep queue so the marking probability ~ 1.
void make_congested(core::l4span& l, ran::pdcp_sn_t& sn, net::ecn codepoint)
{
    auto head = tcp_data(codepoint);
    l.on_dl_packet(head, 1, 1, ++sn, 0);
    for (int i = 0; i < 200; ++i) {
        auto p = tcp_data(codepoint);
        const sim::tick t = i * sim::from_us(500);
        const ran::pdcp_sn_t prev = sn;
        l.on_dl_packet(p, 1, 1, ++sn, t);
        l.on_delivery_status(status(prev, t + sim::from_us(100)), t + sim::from_us(100));
    }
    const ran::pdcp_sn_t warm_end = sn;
    for (int i = 0; i < 300; ++i) {
        auto p = tcp_data(codepoint);
        l.on_dl_packet(p, 1, 1, ++sn, sim::from_ms(110));
    }
    l.on_delivery_status(status(warm_end, sim::from_ms(111)), sim::from_ms(111));
}

}  // namespace

TEST(shortcircuit, tcp_data_not_marked_on_downlink_when_sc_enabled)
{
    l4span_config cfg;
    cfg.short_circuit = true;
    cfg.seed = 5;
    core::l4span l(cfg);
    ran::pdcp_sn_t sn = 0;
    auto syn = tcp_syn(true);
    l.on_dl_packet(syn, 1, 1, ++sn, 0);
    make_congested(l, sn, net::ecn::ect1);
    // Under congestion, DL data keeps its ECT(1): the signal rides the ACKs.
    auto p = tcp_data(net::ecn::ect1);
    l.on_dl_packet(p, 1, 1, ++sn, sim::from_ms(112));
    EXPECT_EQ(p.ecn_field, net::ecn::ect1);
    EXPECT_GT(l.marks(), 0u) << "marks are bookkept, not applied to DL";
}

TEST(shortcircuit, accecn_ack_rewritten_with_ce_counters)
{
    l4span_config cfg;
    cfg.short_circuit = true;
    cfg.seed = 5;
    core::l4span l(cfg);
    ran::pdcp_sn_t sn = 0;
    auto syn = tcp_syn(true);
    l.on_dl_packet(syn, 1, 1, ++sn, 0);
    make_congested(l, sn, net::ecn::ect1);

    auto ack = ul_ack(true);
    ASSERT_TRUE(l.on_ul_packet(ack, 1, sim::from_ms(113)));
    EXPECT_TRUE(ack.tcp->accecn.present);
    EXPECT_GT(ack.tcp->accecn.eceb, 0u) << "CE byte counter reflects tentative marks";
    // ACE counter must equal the bookkept packet count mod 8.
    EXPECT_EQ(ack.tcp->ace(), (5 + l.marks()) % 8);
}

TEST(shortcircuit, classic_ece_latched_until_cwr)
{
    l4span_config cfg;
    cfg.short_circuit = true;
    cfg.seed = 5;
    core::l4span l(cfg);
    ran::pdcp_sn_t sn = 0;
    auto syn = tcp_syn(false);
    l.on_dl_packet(syn, 1, 1, ++sn, 0);
    make_congested(l, sn, net::ecn::ect0);
    ASSERT_GT(l.marks(), 0u);

    auto ack1 = ul_ack();
    l.on_ul_packet(ack1, 1, sim::from_ms(113));
    EXPECT_TRUE(ack1.tcp->flags.ece);
    auto ack2 = ul_ack();
    l.on_ul_packet(ack2, 1, sim::from_ms(114));
    EXPECT_TRUE(ack2.tcp->flags.ece) << "ECE persists until CWR";

    // Drain the queue first (otherwise the still-congested DRB would
    // legitimately re-mark), then let the sender's CWR clear the latch.
    l.on_delivery_status(status(sn, sim::from_ms(114)), sim::from_ms(114));
    l.on_delivery_status(status(sn, sim::from_ms(115)), sim::from_ms(115));
    auto cwr_pkt = tcp_data(net::ecn::ect0);
    cwr_pkt.tcp->flags.cwr = true;
    l.on_dl_packet(cwr_pkt, 1, 1, ++sn, sim::from_ms(115));
    auto ack3 = ul_ack();
    l.on_ul_packet(ack3, 1, sim::from_ms(117));
    EXPECT_FALSE(ack3.tcp->flags.ece);
}

TEST(shortcircuit, rtt_star_from_syn_to_handshake_ack)
{
    l4span_config cfg;
    core::l4span l(cfg);
    auto syn = tcp_syn(true);
    l.on_dl_packet(syn, 1, 1, 1, sim::from_ms(0));
    auto hs = tcp_hs_ack();
    l.on_dl_packet(hs, 1, 1, 2, sim::from_ms(38));
    // RTT* is internal; verify via behaviour: a classic flow's p depends on
    // it. Here we just assert the code path ran without touching the packet.
    EXPECT_EQ(hs.payload_bytes, 0u);
    EXPECT_EQ(l.dl_events(), 2u);
}

TEST(shortcircuit, disabled_sc_marks_downlink_instead)
{
    l4span_config cfg;
    cfg.short_circuit = false;
    cfg.seed = 5;
    core::l4span l(cfg);
    ran::pdcp_sn_t sn = 0;
    auto syn = tcp_syn(true);
    l.on_dl_packet(syn, 1, 1, ++sn, 0);
    make_congested(l, sn, net::ecn::ect1);
    int ce = 0;
    for (int i = 0; i < 50; ++i) {
        auto p = tcp_data(net::ecn::ect1);
        l.on_dl_packet(p, 1, 1, ++sn, sim::from_ms(112));
        if (p.ecn_field == net::ecn::ce) ++ce;
    }
    EXPECT_GT(ce, 25) << "without SC the CE goes on the downlink IP header";

    // And uplink ACKs pass through unmodified.
    auto ack = ul_ack(true);
    const auto before = ack.tcp->accecn;
    l.on_ul_packet(ack, 1, sim::from_ms(113));
    EXPECT_EQ(ack.tcp->accecn.eceb, before.eceb);
}

TEST(shortcircuit, unknown_flow_ack_passes_untouched)
{
    l4span_config cfg;
    cfg.short_circuit = true;
    core::l4span l(cfg);
    auto ack = ul_ack();
    ack.ft.src_port = 1234;  // never seen
    ack.tcp->flags.ece = true;
    EXPECT_TRUE(l.on_ul_packet(ack, 1, 0));
    EXPECT_TRUE(ack.tcp->flags.ece) << "receiver's own echo is preserved";
}

TEST(shortcircuit, non_tcp_uplink_ignored)
{
    core::l4span l({});
    net::packet p;
    p.ft.proto = net::ip_proto::udp;
    p.payload_bytes = 64;
    EXPECT_TRUE(l.on_ul_packet(p, 1, 0));
}
