// topo::fault_plan: deterministic chaos scheduling. The plan is pure
// planning (like topo::mobility_model), so these tests pin down the
// properties scenario::topology relies on: bit-identical schedules for one
// config, per-class stream independence (enabling one fault class never
// shifts another's draws), self-non-overlap of the per-cell streams, and
// actionable validation errors.
#include <gtest/gtest.h>

#include <string>

#include "topo/fault_plan.h"

using namespace l4span;

namespace {

topo::fault_plan_config chaos_cfg()
{
    topo::fault_plan_config cfg;
    cfg.num_cells = 3;
    cfg.ues_per_cell = 2;
    cfg.start = sim::from_ms(500);
    cfg.end = sim::from_sec(20);
    cfg.seed = 99;
    cfg.rlf_per_ue_per_sec = 0.5;
    cfg.ho_failure_per_ue_per_sec = 0.3;
    cfg.outages_per_cell_per_sec = 0.2;
    cfg.flaps_per_cell_per_sec = 0.2;
    cfg.swaps_per_cell_per_sec = 0.2;
    cfg.swap_profiles.emplace_back();           // clean path
    cfg.swap_profiles.back().force_stage = true;
    cfg.swap_profiles.emplace_back();           // bleaching transit
    cfg.swap_profiles.back().bleach_ce = 0.5;
    return cfg;
}

bool same_event(const topo::fault_event& a, const topo::fault_event& b)
{
    return a.when == b.when && a.cls == b.cls && a.ue == b.ue &&
           a.cell == b.cell && a.duration == b.duration && a.mode == b.mode &&
           a.uplink == b.uplink;
}

}  // namespace

TEST(fault_plan, schedule_is_deterministic_and_sorted)
{
    const auto cfg = chaos_cfg();
    const topo::fault_plan a(cfg);
    const topo::fault_plan b(cfg);
    ASSERT_FALSE(a.schedule().empty());
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    sim::tick prev = 0;
    for (std::size_t i = 0; i < a.schedule().size(); ++i) {
        const auto& ev = a.schedule()[i];
        EXPECT_TRUE(same_event(ev, b.schedule()[i])) << "event " << i;
        EXPECT_GE(ev.when, cfg.start);
        EXPECT_LT(ev.when, cfg.end);
        EXPECT_GE(ev.when, prev);  // sorted
        prev = ev.when;
    }
    // Every enabled class actually produced events at these rates/horizon.
    EXPECT_GT(a.count(topo::fault_class::rlf), 0u);
    EXPECT_GT(a.count(topo::fault_class::handover_failure), 0u);
    EXPECT_GT(a.count(topo::fault_class::cell_outage), 0u);
    EXPECT_GT(a.count(topo::fault_class::link_flap), 0u);
    EXPECT_GT(a.count(topo::fault_class::impairment_swap), 0u);
    EXPECT_EQ(a.count(topo::fault_class::rlf) +
                  a.count(topo::fault_class::handover_failure) +
                  a.count(topo::fault_class::cell_outage) +
                  a.count(topo::fault_class::link_flap) +
                  a.count(topo::fault_class::impairment_swap),
              a.schedule().size());
}

TEST(fault_plan, event_fields_match_their_class)
{
    const topo::fault_plan plan(chaos_cfg());
    for (const auto& ev : plan.schedule()) {
        switch (ev.cls) {
        case topo::fault_class::rlf:
            EXPECT_GE(ev.ue, 0);
            EXPECT_LT(ev.ue, 6);
            EXPECT_GE(ev.duration, sim::from_ms(50));  // rlf_outage_min
            break;
        case topo::fault_class::handover_failure:
            EXPECT_GE(ev.ue, 0);
            EXPECT_LT(ev.ue, 6);
            break;
        case topo::fault_class::cell_outage:
            EXPECT_GE(ev.cell, 0);
            EXPECT_LT(ev.cell, 3);
            EXPECT_GE(ev.duration, sim::from_ms(200));  // cell_outage_min
            break;
        case topo::fault_class::link_flap:
            EXPECT_GE(ev.cell, 0);
            EXPECT_LT(ev.cell, 3);
            EXPECT_GE(ev.duration, sim::from_ms(100));  // flap_min
            break;
        case topo::fault_class::impairment_swap:
            EXPECT_GE(ev.cell, 0);
            EXPECT_LT(ev.cell, 3);
            EXPECT_FALSE(ev.uplink);
            break;
        }
    }
}

TEST(fault_plan, classes_draw_independent_streams)
{
    // Disabling every other class must not move the RLF stream: each
    // (class, lane) pair forks its own splitmix64 seed, so plans stay
    // stable as classes are toggled.
    auto cfg = chaos_cfg();
    topo::fault_plan_config only_rlf = cfg;
    only_rlf.ho_failure_per_ue_per_sec = 0.0;
    only_rlf.outages_per_cell_per_sec = 0.0;
    only_rlf.flaps_per_cell_per_sec = 0.0;
    only_rlf.swaps_per_cell_per_sec = 0.0;
    only_rlf.swap_profiles.clear();

    const topo::fault_plan full(cfg);
    const topo::fault_plan solo(only_rlf);
    ASSERT_EQ(solo.schedule().size(), solo.count(topo::fault_class::rlf));
    std::vector<topo::fault_event> full_rlf;
    for (const auto& ev : full.schedule())
        if (ev.cls == topo::fault_class::rlf) full_rlf.push_back(ev);
    ASSERT_EQ(full_rlf.size(), solo.schedule().size());
    for (std::size_t i = 0; i < full_rlf.size(); ++i)
        EXPECT_TRUE(same_event(full_rlf[i], solo.schedule()[i])) << "event " << i;
}

TEST(fault_plan, per_ue_lanes_are_independent_streams)
{
    // Distinct lanes (UEs) of one class draw distinct sequences — a shared
    // stream would fire every UE's faults in lockstep.
    auto cfg = chaos_cfg();
    const topo::fault_plan plan(cfg);
    std::vector<sim::tick> ue0, ue1;
    for (const auto& ev : plan.schedule()) {
        if (ev.cls != topo::fault_class::rlf) continue;
        if (ev.ue == 0) ue0.push_back(ev.when);
        if (ev.ue == 1) ue1.push_back(ev.when);
    }
    ASSERT_FALSE(ue0.empty());
    ASSERT_FALSE(ue1.empty());
    EXPECT_NE(ue0, ue1);
}

TEST(fault_plan, per_cell_outage_and_flap_streams_do_not_self_overlap)
{
    auto cfg = chaos_cfg();
    cfg.outages_per_cell_per_sec = 2.0;  // stress the spacing logic
    cfg.flaps_per_cell_per_sec = 2.0;
    const topo::fault_plan plan(cfg);
    for (const topo::fault_class cls :
         {topo::fault_class::cell_outage, topo::fault_class::link_flap}) {
        for (int c = 0; c < cfg.num_cells; ++c) {
            sim::tick recovered_at = 0;
            for (const auto& ev : plan.schedule()) {
                if (ev.cls != cls || ev.cell != c) continue;
                EXPECT_GE(ev.when, recovered_at)
                    << topo::fault_class_name(cls) << " cell " << c;
                recovered_at = ev.when + ev.duration;
            }
        }
    }
}

TEST(fault_plan, swap_events_cycle_through_the_profiles)
{
    auto cfg = chaos_cfg();
    cfg.rlf_per_ue_per_sec = 0.0;
    cfg.ho_failure_per_ue_per_sec = 0.0;
    cfg.outages_per_cell_per_sec = 0.0;
    cfg.flaps_per_cell_per_sec = 0.0;
    cfg.swaps_per_cell_per_sec = 1.0;
    cfg.swap_uplink = true;
    const topo::fault_plan plan(cfg);
    // Per cell, swaps alternate clean / bleaching, starting at profile 0.
    for (int c = 0; c < cfg.num_cells; ++c) {
        std::size_t i = 0;
        for (const auto& ev : plan.schedule()) {
            if (ev.cell != c) continue;
            EXPECT_TRUE(ev.uplink);
            const auto& expect = cfg.swap_profiles[i % cfg.swap_profiles.size()];
            EXPECT_EQ(ev.impair.bleach_ce, expect.bleach_ce) << "cell " << c;
            EXPECT_EQ(ev.impair.force_stage, expect.force_stage);
            ++i;
        }
        EXPECT_GT(i, 0u);
    }
}

TEST(fault_plan, empty_when_no_class_enabled)
{
    topo::fault_plan_config cfg;
    cfg.num_cells = 2;
    cfg.ues_per_cell = 1;
    EXPECT_FALSE(cfg.any_enabled());
    EXPECT_TRUE(topo::fault_plan(cfg).schedule().empty());
}

TEST(fault_plan, invalid_configs_rejected_with_actionable_messages)
{
    auto expect_throw = [](topo::fault_plan_config cfg, const std::string& needle) {
        try {
            topo::fault_plan plan(std::move(cfg));
            FAIL() << "expected std::invalid_argument mentioning \"" << needle << "\"";
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << "actual message: " << e.what();
        }
    };
    auto cfg = chaos_cfg();
    cfg.rlf_per_ue_per_sec = -1.0;
    expect_throw(cfg, "rates");

    cfg = chaos_cfg();
    cfg.end = cfg.start;  // horizon empty while rates are set
    expect_throw(cfg, "horizon");

    cfg = chaos_cfg();
    cfg.swap_profiles.clear();
    expect_throw(cfg, "swap_profiles");

    cfg = chaos_cfg();
    cfg.ho_failure_reestablish_fraction = 1.5;
    expect_throw(cfg, "ho_failure_reestablish_fraction");

    cfg = chaos_cfg();
    cfg.num_cells = 1;
    expect_throw(cfg, "2 cells");

    cfg = chaos_cfg();
    cfg.swap_profiles[1].bleach_ce = 2.0;  // nested spec validation runs too
    expect_throw(cfg, "swap_profiles[1]");
}
