// QUIC engine over an ideal in-memory pipe plus the multi-cell topology:
// handshake, ACK-range loss recovery, ECN-count feedback to Prague, CID
// path migration across X2/Xn handover, and the ACK-frame wire codec.
#include <gtest/gtest.h>

#include <deque>

#include "net/quic_wire.h"
#include "scenario/topology.h"
#include "topo/path_impairment.h"
#include "transport/prague.h"
#include "transport/quic_engine.h"

using namespace l4span;
using namespace l4span::transport;

// --- ACK-frame wire format ---------------------------------------------------

TEST(quic_wire, varint_boundaries_round_trip)
{
    const std::uint64_t cases[] = {0,
                                   1,
                                   63,
                                   64,
                                   16383,
                                   16384,
                                   (1ull << 30) - 1,
                                   1ull << 30,
                                   net::quic::k_varint_max};
    const std::size_t sizes[] = {1, 1, 1, 2, 2, 4, 4, 8, 8};
    for (std::size_t i = 0; i < std::size(cases); ++i) {
        std::vector<std::uint8_t> buf;
        net::quic::put_varint(buf, cases[i]);
        EXPECT_EQ(buf.size(), sizes[i]) << cases[i];
        const std::uint8_t* p = buf.data();
        std::uint64_t v = 0;
        ASSERT_TRUE(net::quic::get_varint(p, buf.data() + buf.size(), v));
        EXPECT_EQ(v, cases[i]);
        EXPECT_EQ(p, buf.data() + buf.size());
    }
}

TEST(quic_wire, ack_frame_round_trip_with_ranges_and_ecn)
{
    net::quic::ack_frame f;
    f.largest = 1000;
    f.ack_delay_us = 25;
    f.ranges = {{990, 1000}, {700, 900}, {5, 5}};  // descending, gappy
    f.ecn_present = true;
    f.ecn = {123456, 789, 4242};

    const auto bytes = net::quic::encode_ack(f);
    net::quic::ack_frame out;
    ASSERT_TRUE(net::quic::decode_ack(bytes.data(), bytes.size(), out));
    EXPECT_EQ(out, f);
    // The allocation-free size used on the ACK hot path matches the bytes.
    EXPECT_EQ(net::quic::encoded_ack_size(f), bytes.size());
}

TEST(quic_wire, single_range_no_ecn)
{
    net::quic::ack_frame f;
    f.largest = 7;
    f.ranges = {{0, 7}};
    const auto bytes = net::quic::encode_ack(f);
    net::quic::ack_frame out;
    ASSERT_TRUE(net::quic::decode_ack(bytes.data(), bytes.size(), out));
    EXPECT_EQ(out, f);
    EXPECT_FALSE(out.ecn_present);
    EXPECT_EQ(net::quic::encoded_ack_size(f), bytes.size());
}

TEST(quic_wire, rejects_truncation_and_garbage)
{
    net::quic::ack_frame f;
    f.largest = 300;
    f.ranges = {{100, 300}};
    f.ecn_present = true;
    f.ecn = {10, 20, 30};
    const auto bytes = net::quic::encode_ack(f);
    net::quic::ack_frame out;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut)
        EXPECT_FALSE(net::quic::decode_ack(bytes.data(), cut, out)) << cut;
    const std::uint8_t not_ack[] = {0x06, 0x01};
    EXPECT_FALSE(net::quic::decode_ack(not_ack, sizeof(not_ack), out));
    // A first range reaching below packet number 0 is malformed.
    const std::uint8_t bad_range[] = {0x02, 0x05, 0x00, 0x00, 0x09};
    EXPECT_FALSE(net::quic::decode_ack(bad_range, sizeof(bad_range), out));
}

// --- engine over an in-memory pipe -------------------------------------------

namespace {

struct quic_pipe_rig {
    sim::event_loop loop;
    quic::quic_config cfg;
    std::unique_ptr<quic_sender> snd;
    std::unique_ptr<quic_receiver> rcv;
    sim::tick one_way = sim::from_ms(10);
    int drop_every_n_data = 0;  // 0: no drops
    int data_count = 0;
    bool mark_all_ce = false;
    std::unique_ptr<topo::path_impairment> impair;  // data direction only

    explicit quic_pipe_rig(const std::string& cca, std::uint64_t flow_bytes = 0,
                           bool app_limited = false)
    {
        cfg.flow_bytes = flow_bytes;
        cfg.app_limited = app_limited;
        cfg.ft.proto = net::ip_proto::udp;
        auto cc = make_cc(cca, cfg.mtu_payload);
        snd = std::make_unique<quic_sender>(loop, cfg, std::move(cc),
                                            [this](net::packet p) {
            ++data_count;
            if (drop_every_n_data > 0 && data_count % drop_every_n_data == 0)
                return;  // drop
            if (mark_all_ce && net::is_ect(p.ecn_field)) p.ecn_field = net::ecn::ce;
            if (impair) {
                impair->send(std::move(p));
                return;
            }
            loop.schedule_after(one_way, [this, p = std::move(p)] { rcv->on_packet(p); });
        });
        rcv = std::make_unique<quic_receiver>(loop, cfg, [this](net::packet p) {
            loop.schedule_after(one_way, [this, p = std::move(p)] { snd->on_packet(p); });
        });
    }

    // Mounts an impairment stage on the data direction, in front of the
    // propagation delay, the way the scenarios mount one on the wired hop.
    void install_impairment(const topo::impairment_spec& spec)
    {
        impair = std::make_unique<topo::path_impairment>(loop, spec, 42);
        impair->set_deliver([this](net::packet p) {
            loop.schedule_after(one_way,
                                [this, p = std::move(p)] { rcv->on_packet(p); });
        });
    }

    void run(sim::tick t) { loop.run_until(t); }
};

}  // namespace

TEST(quic, handshake_establishes_and_measures_rtt)
{
    quic_pipe_rig rig("cubic");
    rig.snd->start();
    rig.run(sim::from_ms(100));
    EXPECT_EQ(rig.snd->handshake_rtt(), sim::from_ms(20));
}

TEST(quic, clean_link_bulk_has_zero_spurious_retransmits)
{
    // Acceptance (a): ACK-range loss detection must never fire on a clean
    // in-order link — no packet or time threshold can trip.
    quic_pipe_rig rig("cubic");
    rig.snd->start();
    rig.run(sim::from_sec(3));
    EXPECT_GT(rig.rcv->received_bytes(), 2u << 20);
    EXPECT_EQ(rig.snd->retransmits(), 0u);
    EXPECT_EQ(rig.snd->lost_packets(), 0u);
    // In-order arrival keeps the ACK state in one contiguous range.
    EXPECT_EQ(rig.rcv->ack_range_count(), 1u);
}

TEST(quic, finite_flow_finishes_and_reports_fct)
{
    quic_pipe_rig rig("cubic", 50000);
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_TRUE(rig.snd->finished());
    EXPECT_GT(rig.snd->finish_time(), 0);
    EXPECT_GE(rig.rcv->received_bytes(), 50000u);
}

TEST(quic, ack_ranges_recover_from_periodic_loss)
{
    quic_pipe_rig rig("reno");
    rig.drop_every_n_data = 50;  // 2% loss
    rig.snd->start();
    rig.run(sim::from_sec(5));
    EXPECT_GT(rig.rcv->received_bytes(), 2u << 20)
        << "RACK-style detection + new-PN re-sends must sustain progress";
    EXPECT_GT(rig.snd->retransmits(), 0u);
    EXPECT_GT(rig.snd->lost_packets(), 0u);
}

TEST(quic, ecn_counts_reach_prague_without_loss)
{
    // Acceptance (b): CE marks flow back as cumulative ACK_ECN counters and
    // move Prague's alpha, with zero loss or retransmission involved.
    quic_pipe_rig rig("prague");
    rig.snd->start();
    rig.run(sim::from_ms(200));
    const auto w_before = rig.snd->cwnd_bytes();
    rig.mark_all_ce = true;
    rig.run(sim::from_ms(600));
    const auto* pr = dynamic_cast<const prague*>(&rig.snd->cc());
    ASSERT_NE(pr, nullptr);
    EXPECT_GT(pr->alpha(), 0.1) << "alpha EWMA must absorb the CE fraction";
    EXPECT_LT(rig.snd->cwnd_bytes(), w_before);
    EXPECT_GT(rig.rcv->ce_packets(), 0u);
    EXPECT_EQ(rig.snd->retransmits(), 0u);
    EXPECT_EQ(rig.snd->lost_packets(), 0u);
    // And the flow keeps moving at 100% marking (scalable response).
    const auto before = rig.rcv->received_bytes();
    rig.run(sim::from_sec(2));
    EXPECT_GT(rig.rcv->received_bytes(), before);
}

TEST(quic, classic_cc_over_quic_reacts_to_ce_once_per_rtt)
{
    quic_pipe_rig rig("cubic");
    rig.snd->start();
    rig.run(sim::from_ms(300));
    const auto w_before = rig.snd->cwnd_bytes();
    rig.mark_all_ce = true;
    rig.run(sim::from_ms(500));
    EXPECT_LT(rig.snd->cwnd_bytes(), w_before)
        << "a CE increment must shrink a classic sender's window";
    EXPECT_EQ(rig.snd->retransmits(), 0u);
}

TEST(quic, stream_multiplexing_completes_streams_out_of_order_under_loss)
{
    quic_pipe_rig rig("cubic", 0, /*app_limited=*/true);
    std::vector<quic::stream_id_t> completed;
    rig.rcv->set_stream_complete_handler(
        [&](quic::stream_id_t s, sim::tick) { completed.push_back(s); });
    rig.snd->start();
    rig.run(sim::from_ms(50));  // handshake done
    rig.snd->write(1, 40000, true);
    rig.snd->write(2, 1400, true);
    // Drop one early packet: stream 1 repairs while stream 2 sails through.
    rig.drop_every_n_data = 7;
    rig.run(sim::from_ms(100));
    rig.drop_every_n_data = 0;
    rig.run(sim::from_sec(3));
    ASSERT_EQ(completed.size(), 2u);
    EXPECT_GT(rig.snd->retransmits(), 0u);
    EXPECT_EQ(rig.rcv->received_bytes(), 41400u);
}

TEST(quic, per_stream_flow_control_caps_a_stream)
{
    quic_pipe_rig rig("cubic", 0, /*app_limited=*/true);
    rig.cfg.stream_flow_window = 8192;
    rig.snd = std::make_unique<quic_sender>(rig.loop, rig.cfg,
                                            make_cc("cubic", rig.cfg.mtu_payload),
                                            [&rig](net::packet p) {
        rig.loop.schedule_after(rig.one_way,
                                [&rig, p = std::move(p)] { rig.rcv->on_packet(p); });
    });
    rig.rcv = std::make_unique<quic_receiver>(rig.loop, rig.cfg, [&rig](net::packet p) {
        rig.loop.schedule_after(rig.one_way,
                                [&rig, p = std::move(p)] { rig.snd->on_packet(p); });
    });
    rig.snd->start();
    rig.run(sim::from_ms(50));
    rig.snd->write(1, 1u << 20, true);
    rig.run(sim::from_sec(5));
    // The stream window is granted back as data is consumed, so the whole
    // megabyte eventually lands — but never more than window bytes per RTT.
    EXPECT_EQ(rig.rcv->received_bytes(), 1u << 20);
    const double rtt_s = 0.02;
    const double cap_mbps = 8192 * 8.0 / rtt_s / 1e6;
    const double got_mbps = static_cast<double>(rig.rcv->received_bytes()) * 8.0 / 5.0 / 1e6;
    EXPECT_LT(got_mbps, cap_mbps) << "flow control must bound the rate";
}

TEST(quic, foreign_cid_is_dropped_known_cids_survive_rotation)
{
    quic_pipe_rig rig("cubic");
    rig.snd->start();
    rig.run(sim::from_ms(500));
    const auto delivered = rig.rcv->received_bytes();
    EXPECT_EQ(rig.rcv->cid_drops(), 0u);

    // Rotate to the next issued CID mid-flight: traffic keeps flowing.
    rig.snd->on_path_switch();
    EXPECT_EQ(rig.snd->path_migrations(), 1u);
    rig.run(sim::from_ms(800));
    EXPECT_GT(rig.rcv->received_bytes(), delivered);
    EXPECT_EQ(rig.rcv->cid_drops(), 0u);

    // A packet with a CID outside the issued set is not this connection.
    net::packet alien;
    alien.ft = rig.cfg.ft;
    alien.ft.proto = net::ip_proto::udp;
    auto payload = std::make_shared<quic::packet_payload>();
    payload->dcid = rig.cfg.cid_base + 100;
    payload->pn = 9999;
    alien.app_data = payload;
    rig.rcv->on_packet(alien);
    EXPECT_EQ(rig.rcv->cid_drops(), 1u);
}

// --- QUIC across an X2/Xn handover -------------------------------------------

TEST(quic, survives_handover_with_zero_transport_retransmissions)
{
    // Acceptance (c): a QUIC bulk flow rides through a mid-transfer X2/Xn
    // handover on CID semantics alone — the RLC AM forwarding underneath
    // preserves every admitted SDU, so the transport never re-sends.
    scenario::topology_spec spec;
    spec.num_cells = 2;
    spec.ues_per_cell = 1;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "static";
    spec.cell.seed = 5;
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.cca = "quic-prague";
    f.ue = 0;
    f.max_cwnd = 1536 * 1024;
    const int h = topo.add_flow(f);
    topo.schedule_handover(sim::from_ms(1500), 0, 1);
    topo.run(sim::from_sec(3));

    EXPECT_EQ(topo.handovers_completed(), 1u);
    EXPECT_EQ(topo.serving_cell(0), 1);
    EXPECT_EQ(topo.flow_retransmits(h), 0u);
    EXPECT_GT(topo.delivered_bytes(h), 2u << 20);
    const transport::quic_sender* q = topo.quic_flow(h);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->path_migrations(), 1u);
    EXPECT_EQ(q->active_cid(), 2u);  // rotated off the initial CID
    // Delivery kept flowing after the path switch.
    EXPECT_GT(topo.goodput_series(h).mbps_at(sim::from_ms(2500)), 1.0);
}

TEST(quic, interactive_frames_keep_low_owd_across_handover)
{
    scenario::topology_spec spec;
    spec.num_cells = 2;
    spec.ues_per_cell = 1;
    spec.cell.cu = scenario::cu_mode::l4span;
    spec.cell.channel = "static";
    spec.cell.seed = 7;
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.cca = "quic-prague";
    f.ue = 0;
    f.fps = 60.0;
    f.frame_bitrate_bps = 6e6;
    f.frame_deadline_ms = 100.0;
    const int h = topo.add_flow(f);
    topo.schedule_handover(sim::from_ms(1500), 0, 1);
    topo.run(sim::from_sec(3));

    const media::frame_source* fr = topo.frame_stats(h);
    ASSERT_NE(fr, nullptr);
    EXPECT_EQ(topo.handovers_completed(), 1u);
    EXPECT_GT(fr->frames_completed(), 150u);
    // An app-limited 6 Mb/s source in an otherwise empty cell completes
    // nearly every frame inside a generous 100 ms budget, handover included
    // (the allowance covers the handshake/slow-start transient).
    EXPECT_LT(fr->stall_fraction(), 0.10);
    EXPECT_EQ(topo.flow_retransmits(h), 0u);
}

// --- ECN validation / fallback under adversarial paths (path_impairment) -----

TEST(quic_ecn_fallback, clean_link_never_falls_back)
{
    quic_pipe_rig rig("prague");
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_FALSE(rig.snd->ecn_fallback());
    EXPECT_EQ(rig.snd->retransmits(), 0u);
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20);
}

TEST(quic_ecn_fallback, ect_strip_triggers_fallback_without_spurious_retx)
{
    // RFC 9000 §13.4.2 ECN validation: the peer's ECN counts never move when
    // a middlebox zeroes the field, so the sender must mark the path as not
    // ECN-capable and send subsequent packets Not-ECT — with zero data
    // re-sends on this loss-free link.
    quic_pipe_rig rig("prague");
    topo::impairment_spec strip;
    strip.strip_ect = 1.0;
    rig.install_impairment(strip);
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_TRUE(rig.snd->ecn_fallback())
        << "sender must detect that the path is not ECN-capable";
    EXPECT_EQ(rig.snd->retransmits(), 0u)
        << "fallback must not manufacture loss on a clean link";
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20)
        << "the transfer must keep progressing after fallback";
    EXPECT_EQ(rig.rcv->ce_packets(), 0u);
    // Post-fallback packets leave the sender Not-ECT already, so the strip
    // count stops well short of the input count.
    const auto& st = rig.impair->stats();
    EXPECT_LT(st.stripped, st.input / 2)
        << "sender kept stamping ECT after fallback";
}

TEST(quic_ecn_fallback, fallback_sender_still_recovers_from_loss)
{
    quic_pipe_rig rig("prague");
    topo::impairment_spec adversarial;
    adversarial.strip_ect = 1.0;
    adversarial.loss = 0.01;
    adversarial.loss_burst = 2.0;
    rig.install_impairment(adversarial);
    rig.snd->start();
    rig.run(sim::from_sec(3));
    EXPECT_TRUE(rig.snd->ecn_fallback());
    EXPECT_GT(rig.snd->retransmits(), 0u)
        << "ACK-range loss detection must keep repairing losses";
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20)
        << "loss-based control must sustain progress after fallback";
}

TEST(quic_ecn_fallback, reordering_alone_causes_no_fallback)
{
    // Mild reordering shuffles ECN-marked packets but the counts still
    // arrive; ECN validation must not be tripped by it.
    quic_pipe_rig rig("prague");
    topo::impairment_spec shuffle;
    shuffle.reorder = 0.05;
    shuffle.reorder_gap = 2;
    rig.install_impairment(shuffle);
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_FALSE(rig.snd->ecn_fallback());
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20);
}
