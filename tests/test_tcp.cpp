// TCP engine over an ideal in-memory pipe: handshake, delivery, recovery,
// ECN feedback paths.
#include <gtest/gtest.h>

#include <deque>

#include "scenario/cell_scenario.h"
#include "topo/path_impairment.h"
#include "transport/prague.h"
#include "transport/tcp.h"

using namespace l4span;
using namespace l4span::transport;

namespace {

// Two endpoints joined by fixed-delay pipes with optional loss/marking.
struct pipe_rig {
    sim::event_loop loop;
    tcp_config cfg;
    std::unique_ptr<tcp_sender> snd;
    std::unique_ptr<tcp_receiver> rcv;
    sim::tick one_way = sim::from_ms(10);
    int drop_every_n_data = 0;  // 0: no drops
    int data_count = 0;
    bool mark_all_ce = false;
    std::unique_ptr<topo::path_impairment> impair;  // data direction only

    explicit pipe_rig(const std::string& cca, std::uint64_t flow_bytes = 0)
    {
        cfg.flow_bytes = flow_bytes;
        cfg.ft.proto = net::ip_proto::tcp;
        auto cc = make_cc(cca, cfg.mss);
        const bool accecn = cc->uses_accecn();
        snd = std::make_unique<tcp_sender>(loop, cfg, std::move(cc), [this](net::packet p) {
            ++data_count;
            if (drop_every_n_data > 0 && p.payload_bytes > 0 &&
                data_count % drop_every_n_data == 0)
                return;  // drop
            if (mark_all_ce && net::is_ect(p.ecn_field)) p.ecn_field = net::ecn::ce;
            if (impair) {
                impair->send(std::move(p));
                return;
            }
            loop.schedule_after(one_way,
                                [this, p = std::move(p)] { rcv->on_packet(p); });
        });
        rcv = std::make_unique<tcp_receiver>(loop, cfg, accecn, [this](net::packet p) {
            loop.schedule_after(one_way,
                                [this, p = std::move(p)] { snd->on_packet(p); });
        });
    }

    // Mounts an impairment stage on the data direction (sender -> receiver),
    // in front of the propagation delay, the way the scenarios mount one on
    // the wired hop.
    void install_impairment(const topo::impairment_spec& spec)
    {
        impair = std::make_unique<topo::path_impairment>(loop, spec, 42);
        impair->set_deliver([this](net::packet p) {
            loop.schedule_after(one_way,
                                [this, p = std::move(p)] { rcv->on_packet(p); });
        });
    }

    void run(sim::tick t) { loop.run_until(t); }
};

}  // namespace

TEST(tcp, handshake_establishes_and_measures_rtt)
{
    pipe_rig rig("reno");
    rig.snd->start();
    rig.run(sim::from_ms(100));
    EXPECT_EQ(rig.snd->handshake_rtt(), sim::from_ms(20));
}

TEST(tcp, bulk_transfer_delivers_in_order)
{
    pipe_rig rig("reno");
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20);
    EXPECT_EQ(rig.rcv->received_bytes(), rig.snd->delivered_bytes());
}

TEST(tcp, slow_start_doubles_per_rtt)
{
    pipe_rig rig("reno");
    rig.snd->start();
    rig.run(sim::from_ms(25));  // established + first flight acked
    const auto w1 = rig.snd->cwnd_bytes();
    rig.run(sim::from_ms(45));
    const auto w2 = rig.snd->cwnd_bytes();
    EXPECT_GE(w2, w1 + w1 / 2) << "slow start should roughly double per RTT";
}

TEST(tcp, finite_flow_finishes_and_reports_fct)
{
    pipe_rig rig("cubic", 50000);
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_TRUE(rig.snd->finished());
    EXPECT_GT(rig.snd->finish_time(), 0);
    EXPECT_GE(rig.rcv->received_bytes(), 50000u);
}

TEST(tcp, recovers_from_periodic_loss)
{
    pipe_rig rig("reno");
    rig.drop_every_n_data = 50;  // 2% loss
    rig.snd->start();
    rig.run(sim::from_sec(5));
    EXPECT_GT(rig.rcv->received_bytes(), 2u << 20)
        << "fast retransmit + RTO must sustain progress under loss";
    EXPECT_GT(rig.snd->retransmits(), 0u);
}

TEST(tcp, classic_ecn_echo_until_cwr)
{
    pipe_rig rig("reno");
    rig.snd->start();
    rig.run(sim::from_ms(60));
    const auto w_before = rig.snd->cwnd_bytes();
    rig.mark_all_ce = true;
    rig.run(sim::from_ms(120));
    rig.mark_all_ce = false;
    rig.run(sim::from_ms(200));
    EXPECT_LT(rig.snd->cwnd_bytes(), w_before)
        << "ECE feedback must shrink a classic sender's window";
    EXPECT_GT(rig.rcv->ce_packets(), 0u);
}

TEST(tcp, accecn_ce_fraction_reaches_prague)
{
    pipe_rig rig("prague");
    rig.snd->start();
    rig.run(sim::from_ms(200));
    rig.mark_all_ce = true;
    rig.run(sim::from_ms(400));
    const auto* pr = dynamic_cast<const prague*>(&rig.snd->cc());
    ASSERT_NE(pr, nullptr);
    EXPECT_GT(pr->alpha(), 0.1) << "alpha EWMA must absorb the CE fraction";
}

TEST(tcp, prague_survives_full_marking_without_collapse)
{
    pipe_rig rig("prague");
    rig.snd->start();
    rig.run(sim::from_ms(200));
    rig.mark_all_ce = true;
    rig.run(sim::from_sec(2));
    // Even at 100% marking, Prague's alpha-based MD floors at 2 MSS and the
    // flow keeps moving.
    EXPECT_GT(rig.snd->cwnd_bytes(), 0u);
    const auto before = rig.rcv->received_bytes();
    rig.run(sim::from_sec(3));
    EXPECT_GT(rig.rcv->received_bytes(), before);
}

TEST(tcp, rtt_samples_reflect_path)
{
    pipe_rig rig("cubic");
    rig.snd->start();
    rig.run(sim::from_sec(1));
    ASSERT_GT(rig.snd->rtt_samples().count(), 10u);
    EXPECT_NEAR(rig.snd->rtt_samples().median(), 20.0, 2.0);
}

TEST(tcp, receiver_counts_owd)
{
    pipe_rig rig("cubic");
    rig.snd->start();
    rig.run(sim::from_sec(1));
    ASSERT_GT(rig.rcv->owd_samples().count(), 10u);
    EXPECT_NEAR(rig.rcv->owd_samples().median(), 10.0, 1.0);
}

TEST(tcp, stop_halts_new_data)
{
    pipe_rig rig("reno");
    rig.snd->start();
    rig.run(sim::from_ms(500));
    rig.snd->stop();
    rig.run(sim::from_ms(600));
    const auto frozen = rig.rcv->received_bytes();
    rig.run(sim::from_sec(2));
    EXPECT_EQ(rig.rcv->received_bytes(), frozen);
}

// ---- ECN validation / fallback under adversarial paths (path_impairment) --

TEST(tcp_ecn_fallback, clean_link_never_falls_back)
{
    pipe_rig rig("prague");
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_FALSE(rig.snd->ecn_fallback());
    EXPECT_EQ(rig.snd->retransmits(), 0u);
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20);
}

TEST(tcp_ecn_fallback, ect_strip_triggers_fallback_without_spurious_retx)
{
    // A field-zeroing middlebox strips every ECT mark: the receiver's AccECN
    // counters never move, so after enough delivered data the sender must
    // declare ECN unusable and stop stamping ECT — while the transfer keeps
    // running on loss-based control with ZERO retransmits on this clean
    // (loss-free) link.
    pipe_rig rig("prague");
    topo::impairment_spec strip;
    strip.strip_ect = 1.0;
    rig.install_impairment(strip);
    rig.snd->start();
    rig.run(sim::from_sec(2));
    EXPECT_TRUE(rig.snd->ecn_fallback())
        << "sender must detect that the path is not ECN-capable";
    EXPECT_EQ(rig.snd->retransmits(), 0u)
        << "fallback must not manufacture loss on a clean link";
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20)
        << "the transfer must keep progressing after fallback";
    // Post-fallback packets leave the sender as Not-ECT, so the stage has
    // nothing left to strip: strips stop well short of the input count.
    const auto& st = rig.impair->stats();
    EXPECT_LT(st.stripped, st.input / 2)
        << "sender kept stamping ECT after fallback";
}

TEST(tcp_ecn_fallback, fallback_sender_still_recovers_from_loss)
{
    // Loss-based control must stay fully functional after ECN fallback.
    pipe_rig rig("prague");
    topo::impairment_spec adversarial;
    adversarial.strip_ect = 1.0;
    adversarial.loss = 0.01;
    adversarial.loss_burst = 2.0;
    rig.install_impairment(adversarial);
    rig.snd->start();
    rig.run(sim::from_sec(3));
    EXPECT_TRUE(rig.snd->ecn_fallback());
    EXPECT_GT(rig.snd->retransmits(), 0u) << "losses must be repaired";
    // The receiver delivers a strict in-order prefix; acks for the tail can
    // still be in flight when the clock stops.
    EXPECT_GE(rig.rcv->received_bytes(), rig.snd->delivered_bytes())
        << "in-order delivery must survive loss recovery";
    EXPECT_GT(rig.rcv->received_bytes(), 1u << 20);
}

TEST(tcp_ecn_fallback, bleached_path_does_not_starve_prague_vs_cubic)
{
    // 100% CE-bleaching between a DualPi2 bottleneck and the RAN erases
    // every congestion mark the core AQM applies. Prague then leans on the
    // L4Span CU's short-circuit marking (applied after the wired path, so
    // it cannot be bleached) and must keep a healthy share against a
    // loss-based cubic competitor instead of starving.
    auto run_cell = [](bool bleach) {
        scenario::cell_spec cell;
        cell.num_ues = 2;
        cell.channel = "static";
        cell.cu = scenario::cu_mode::l4span;
        cell.seed = 11;
        cell.bottleneck_bps = 60e6;
        cell.bottleneck_aqm = "dualpi2";
        if (bleach) cell.impair_dl.bleach_ce = 1.0;
        scenario::cell_scenario s(cell);
        scenario::flow_spec fp;
        fp.cca = "prague";
        fp.ue = 0;
        const int hp = s.add_flow(fp);
        scenario::flow_spec fc;
        fc.cca = "cubic";
        fc.ue = 1;
        const int hc = s.add_flow(fc);
        s.run(sim::from_sec(3));
        return std::pair<double, double>(
            static_cast<double>(s.delivered_bytes(hp)),
            static_cast<double>(s.delivered_bytes(hc)));
    };
    const auto [prague, cubic] = run_cell(true);
    EXPECT_GT(prague, 1e6) << "prague must keep moving data under bleaching";
    EXPECT_GT(prague, 0.25 * cubic)
        << "prague must not starve against cubic on a bleached path "
        << "(prague=" << prague << " cubic=" << cubic << ")";
    // Sanity: the run actually had both flows competing.
    EXPECT_GT(cubic, 1e6);
}
