// Scenario harness and wired topology: determinism, routing, multi-DRB
// separation, RLC-mode coverage, bottleneck schedules, and a parameterized
// sweep asserting the headline property for every congestion controller.
#include <gtest/gtest.h>

#include "scenario/cell_scenario.h"
#include "topo/wired_link.h"

using namespace l4span;
using scenario::cell_scenario;
using scenario::cell_spec;
using scenario::cu_mode;
using scenario::flow_spec;

TEST(wired_link, serializes_at_line_rate)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 12e6, sim::from_ms(5));  // 1500 B = 1 ms
    std::vector<sim::tick> arrivals;
    link.set_deliver([&](net::packet) { arrivals.push_back(loop.now()); });
    for (int i = 0; i < 3; ++i) {
        net::packet p;
        p.ft.proto = net::ip_proto::udp;
        p.payload_bytes = 1472;  // 1500 B on the wire
        link.send(std::move(p));
    }
    loop.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], sim::from_ms(6));  // 1 ms serialize + 5 ms prop
    EXPECT_EQ(arrivals[1], sim::from_ms(7));
    EXPECT_EQ(arrivals[2], sim::from_ms(8));
}

TEST(wired_link, rate_change_takes_effect)
{
    sim::event_loop loop;
    topo::wired_link link(loop, 12e6, 0);
    int delivered = 0;
    link.set_deliver([&](net::packet) { ++delivered; });
    loop.schedule_at(sim::from_ms(10), [&] { link.set_rate(1.2e6); });
    for (int i = 0; i < 20; ++i) {
        net::packet p;
        p.ft.proto = net::ip_proto::udp;
        p.payload_bytes = 1472;
        link.send(std::move(p));
    }
    loop.run_until(sim::from_ms(10));
    const int fast_phase = delivered;   // ~10 packets at 1 ms each
    loop.run_until(sim::from_ms(30));
    const int slow_phase = delivered - fast_phase;  // 10 ms each now
    EXPECT_GT(fast_phase, 5);
    EXPECT_LT(slow_phase, 5);
}

TEST(scenario, identical_seeds_are_bit_reproducible)
{
    auto run_once = [] {
        cell_spec c;
        c.num_ues = 2;
        c.channel = "vehicular";
        c.cu = cu_mode::l4span;
        c.seed = 99;
        cell_scenario s(c);
        flow_spec f;
        f.cca = "prague";
        const int h0 = s.add_flow(f);
        f.cca = "cubic";
        f.ue = 1;
        const int h1 = s.add_flow(f);
        s.run(sim::from_sec(3));
        return std::make_pair(s.delivered_bytes(h0), s.delivered_bytes(h1));
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(scenario, different_seeds_differ)
{
    auto run_with = [](std::uint64_t seed) {
        cell_spec c;
        c.channel = "vehicular";
        c.seed = seed;
        cell_scenario s(c);
        flow_spec f;
        f.cca = "prague";
        const int h = s.add_flow(f);
        s.run(sim::from_sec(3));
        return s.delivered_bytes(h);
    };
    EXPECT_NE(run_with(1), run_with(2));
}

TEST(scenario, um_mode_works_end_to_end)
{
    cell_spec c;
    c.rlc_mode = ran::rlc_mode::um;
    c.cu = cu_mode::l4span;
    c.seed = 5;
    cell_scenario s(c);
    flow_spec f;
    f.cca = "prague";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(5));
    // UM has no delivery feedback; L4Span must still control delay using
    // transmit timestamps only (§4.3.1).
    EXPECT_GT(s.goodput_mbps(h), 15.0);
    EXPECT_LT(s.owd_ms(h).median(), 150.0);
}

TEST(scenario, separate_drbs_isolate_classes)
{
    cell_spec c;
    c.separate_drbs_per_class = true;
    c.cu = cu_mode::l4span;
    c.seed = 5;
    cell_scenario s(c);
    flow_spec fp;
    fp.cca = "prague";
    const int hp = s.add_flow(fp);
    flow_spec fc;
    fc.cca = "cubic";
    const int hc = s.add_flow(fc);
    s.run(sim::from_sec(6));
    // Both flows make progress and split the cell roughly evenly.
    EXPECT_GT(s.goodput_mbps(hp), 8.0);
    EXPECT_GT(s.goodput_mbps(hc), 8.0);
    const auto v1 = s.l4span_layer()->view(1, 1);
    const auto v2 = s.l4span_layer()->view(1, 2);
    EXPECT_TRUE(v1.has_l4s);
    EXPECT_FALSE(v1.has_classic);
    EXPECT_TRUE(v2.has_classic);
}

TEST(scenario, bottleneck_schedule_caps_throughput)
{
    cell_spec c;
    c.cu = cu_mode::l4span;
    c.seed = 5;
    c.bottleneck_bps = 100e6;
    c.bottleneck_schedule = {{sim::from_sec(3), 5e6}};
    cell_scenario s(c);
    flow_spec f;
    f.cca = "prague";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(8));
    // After 3 s the wired middlebox (5 Mbit/s) is the bottleneck.
    double late = 0;
    for (int k = 0; k < 20; ++k)
        late += s.goodput_series(h).mbps_at(sim::from_sec(6) + k * sim::from_ms(100)) / 20.0;
    EXPECT_LT(late, 7.0);
    EXPECT_GT(late, 2.0);
}

TEST(scenario, flow_start_stop_respected)
{
    cell_spec c;
    c.seed = 5;
    cell_scenario s(c);
    flow_spec f;
    f.cca = "prague";
    f.start_time = sim::from_sec(2);
    f.stop_time = sim::from_sec(4);
    const int h = s.add_flow(f);
    s.run(sim::from_sec(8));
    EXPECT_NEAR(s.goodput_series(h).mbps_at(sim::from_sec(1)), 0.0, 0.1);
    EXPECT_GT(s.goodput_series(h).mbps_at(sim::from_sec(3)), 5.0);
    EXPECT_NEAR(s.goodput_series(h).mbps_at(sim::from_sec(7)), 0.0, 0.5);
}

TEST(scenario, unknown_inputs_rejected)
{
    cell_spec c;
    c.channel = "warp-drive";
    EXPECT_THROW(cell_scenario{c}, std::invalid_argument);
    cell_spec ok;
    cell_scenario s(ok);
    flow_spec f;
    f.ue = 5;  // only one UE exists
    EXPECT_THROW(s.add_flow(f), std::out_of_range);
}

TEST(scenario, result_accessors_bounds_check_flow_and_ue_handles)
{
    cell_spec c;
    cell_scenario s(c);
    const int h = s.add_flow(flow_spec{});
    s.run(sim::from_ms(200));
    // Valid handles work...
    EXPECT_NO_THROW(s.owd_ms(h));
    EXPECT_NO_THROW(s.rlc_queue_sdus(0));
    // ...every bad flow handle throws instead of silently reading a stale
    // or foreign flow slot.
    for (const int bad : {-1, 1, 42}) {
        EXPECT_THROW(s.owd_ms(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.rtt_ms(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.goodput_mbps(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.goodput_series(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.fct_ms(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.delivered_bytes(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.flow_cwnd(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.tcp_flow(bad), std::out_of_range) << bad;
    }
    for (const int bad : {-1, 1, 9}) {
        EXPECT_THROW(s.rlc_queue_sdus(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.rlc_queue_series(bad), std::out_of_range) << bad;
        EXPECT_THROW(s.tx_log(bad), std::out_of_range) << bad;
    }
}

// ---- parameterized sweep: the headline property holds for every CCA ----

class cca_sweep : public ::testing::TestWithParam<const char*> {};

TEST_P(cca_sweep, l4span_never_hurts_delay_and_keeps_goodput)
{
    const std::string cca = GetParam();
    double owd_on = 0, owd_off = 0, tput_on = 0, tput_off = 0;
    for (const bool on : {false, true}) {
        cell_spec c;
        c.cu = on ? cu_mode::l4span : cu_mode::none;
        c.seed = 123;
        cell_scenario s(c);
        flow_spec f;
        f.cca = cca;
        const int h = s.add_flow(f);
        s.run(sim::from_sec(8));
        (on ? owd_on : owd_off) = s.owd_ms(h).median();
        (on ? tput_on : tput_off) = s.goodput_mbps(h);
    }
    EXPECT_LE(owd_on, owd_off * 1.15) << "L4Span must not worsen median delay";
    EXPECT_GT(tput_on, tput_off * 0.6) << "and must keep most of the goodput";
}

INSTANTIATE_TEST_SUITE_P(all_ccas, cca_sweep,
                         ::testing::Values("prague", "cubic", "reno", "bbr", "bbr2",
                                           "scream", "udp-prague"));

class channel_sweep : public ::testing::TestWithParam<const char*> {};

TEST_P(channel_sweep, prague_stays_low_latency_in_every_channel)
{
    cell_spec c;
    c.channel = GetParam();
    c.cu = cu_mode::l4span;
    c.seed = 321;
    cell_scenario s(c);
    flow_spec f;
    f.cca = "prague";
    const int h = s.add_flow(f);
    s.run(sim::from_sec(8));
    EXPECT_LT(s.owd_ms(h).median(), 120.0);
    EXPECT_GT(s.goodput_mbps(h), 10.0);
}

INSTANTIATE_TEST_SUITE_P(all_channels, channel_sweep,
                         ::testing::Values("static", "pedestrian", "vehicular", "mobile"));
