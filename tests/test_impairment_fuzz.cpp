// Fuzz campaign for topo::path_impairment: random knob vectors and random
// traffic must never crash, violate conservation, invent packets, or leave
// the hold buffer non-empty once the loop drains. Invalid knob vectors must
// be rejected by validate() with std::invalid_argument (never accepted and
// never any other exception type).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"
#include "topo/path_impairment.h"

using namespace l4span;
using namespace l4span::topo;

namespace {

net::ecn random_ecn(sim::rng& rng)
{
    switch (rng.uniform_int(0, 3)) {
        case 0: return net::ecn::not_ect;
        case 1: return net::ecn::ect0;
        case 2: return net::ecn::ect1;
        default: return net::ecn::ce;
    }
}

impairment_spec random_spec(sim::rng& rng)
{
    impairment_spec s;
    // Each knob is off half the time so single- and multi-transform stages
    // are both exercised, including the all-off pass-through.
    if (rng.bernoulli(0.5)) s.remark_ect1 = rng.uniform(0.0, 1.0);
    if (rng.bernoulli(0.5)) s.bleach_ce = rng.uniform(0.0, 1.0);
    if (rng.bernoulli(0.5)) s.strip_ect = rng.uniform(0.0, 1.0);
    if (rng.bernoulli(0.5)) s.loss = rng.uniform(0.0, 0.5);
    if (rng.bernoulli(0.5)) s.loss_burst = rng.uniform(1.0, 16.0);
    if (rng.bernoulli(0.5)) s.reorder = rng.uniform(0.0, 1.0);
    s.reorder_gap = static_cast<int>(rng.uniform_int(1, 50));
    s.reorder_hold_max = rng.uniform_int(1, 50) * sim::k_millisecond;
    if (rng.bernoulli(0.5)) s.duplicate = rng.uniform(0.0, 0.5);
    s.force_stage = rng.bernoulli(0.2);
    return s;
}

}  // namespace

TEST(impairment_fuzz, random_configs_conserve_packets)
{
    sim::rng rng(20260808);
    for (int round = 0; round < 300; ++round) {
        const impairment_spec spec = random_spec(rng);
        sim::event_loop loop;
        path_impairment stage(loop, spec, rng.uniform_int(1, 1u << 30));
        std::uint64_t delivered = 0;
        std::uint64_t last_id_plus_1 = 0;
        std::vector<std::uint32_t> copies;
        stage.set_deliver([&](net::packet p) {
            ++delivered;
            if (p.pkt_id >= copies.size()) copies.resize(p.pkt_id + 1, 0);
            ++copies[p.pkt_id];
        });
        const std::uint64_t n = rng.uniform_int(1, 2000);
        for (std::uint64_t i = 0; i < n; ++i) {
            net::packet p;
            p.ft.proto = net::ip_proto::udp;
            p.ecn_field = random_ecn(rng);
            p.pkt_id = i;
            p.payload_bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 1500));
            stage.send(std::move(p));
            last_id_plus_1 = i + 1;
            // Conservation must hold mid-stream, not just at the end.
            const auto& st = stage.stats();
            ASSERT_EQ(st.input + st.duplicated,
                      st.delivered + st.lost + stage.held_packets());
        }
        loop.run();  // fire all hold timers
        const auto& st = stage.stats();
        EXPECT_EQ(stage.held_packets(), 0u) << "hold buffer must drain";
        EXPECT_EQ(st.input, last_id_plus_1);
        EXPECT_EQ(st.input + st.duplicated, st.delivered + st.lost);
        EXPECT_EQ(st.delivered, delivered);
        // No packet is invented: at most 1 copy without the duplicate knob,
        // at most 2 with it; every copy accounted to a real pkt_id.
        std::uint64_t total_copies = 0;
        for (std::uint32_t c : copies) {
            EXPECT_LE(c, spec.duplicate > 0.0 ? 2u : 1u);
            total_copies += c;
        }
        EXPECT_EQ(total_copies, delivered);
        EXPECT_LE(copies.size(), n);
    }
}

TEST(impairment_fuzz, out_of_range_specs_always_rejected)
{
    sim::rng rng(4711);
    for (int round = 0; round < 200; ++round) {
        impairment_spec s = random_spec(rng);
        // Corrupt exactly one knob per round.
        switch (rng.uniform_int(0, 8)) {
            case 0: s.remark_ect1 = rng.uniform(1.0001, 100.0); break;
            case 1: s.bleach_ce = -rng.uniform(0.0001, 100.0); break;
            case 2: s.strip_ect = rng.uniform(1.0001, 100.0); break;
            case 3: s.loss = -rng.uniform(0.0001, 100.0); break;
            case 4: s.loss_burst = rng.uniform(-5.0, 0.9999); break;
            case 5: s.reorder = rng.uniform(1.0001, 100.0); break;
            case 6: s.reorder_gap = static_cast<int>(rng.uniform_int(-100, 0)); break;
            case 7: s.reorder_hold_max = -rng.uniform_int(0, 1000); break;
            default: s.duplicate = rng.uniform(1.0001, 100.0); break;
        }
        EXPECT_THROW(s.validate("fuzz"), std::invalid_argument);
        sim::event_loop loop;
        EXPECT_THROW(path_impairment(loop, s, 1), std::invalid_argument)
            << "the stage constructor must re-validate";
    }
}

TEST(impairment_fuzz, random_traffic_through_chained_stages)
{
    // Two stages back-to-back (the scenarios mount at most one per
    // direction, but composition must still be safe) with bursty arrival
    // patterns driven through the event loop.
    sim::rng rng(99991);
    for (int round = 0; round < 50; ++round) {
        sim::event_loop loop;
        path_impairment a(loop, random_spec(rng), rng.uniform_int(1, 1u << 30));
        path_impairment b(loop, random_spec(rng), rng.uniform_int(1, 1u << 30));
        std::uint64_t sink = 0;
        a.set_deliver([&](net::packet p) { b.send(std::move(p)); });
        b.set_deliver([&](net::packet p) {
            ++sink;
            (void)p;
        });
        const int n = static_cast<int>(rng.uniform_int(1, 500));
        sim::tick at = 0;
        for (int i = 0; i < n; ++i) {
            at += rng.uniform_int(0, 2000) * sim::k_microsecond;
            loop.schedule_at(at, [&a, i, &rng] {
                net::packet p;
                p.ft.proto = net::ip_proto::udp;
                p.ecn_field = random_ecn(rng);
                p.pkt_id = static_cast<std::uint64_t>(i);
                p.payload_bytes = 1200;
                a.send(std::move(p));
            });
        }
        loop.run();
        EXPECT_EQ(a.held_packets(), 0u);
        EXPECT_EQ(b.held_packets(), 0u);
        const auto& sa = a.stats();
        const auto& sb = b.stats();
        EXPECT_EQ(sa.input, static_cast<std::uint64_t>(n));
        EXPECT_EQ(sa.input + sa.duplicated, sa.delivered + sa.lost);
        EXPECT_EQ(sb.input, sa.delivered);
        EXPECT_EQ(sb.input + sb.duplicated, sb.delivered + sb.lost);
        EXPECT_EQ(sink, sb.delivered);
    }
}
