// Pooled packet arena: recycling, reference counting, bounded-pool
// exhaustion and generation-checked stale-handle safety. The suite runs
// under ASan in CI, so a use-after-recycle that slipped past the generation
// check would surface here first.
#include <gtest/gtest.h>

#include <stdexcept>

#include "net/packet_pool.h"

using namespace l4span;

namespace {

net::packet make_packet(std::uint32_t bytes)
{
    net::packet p;
    p.payload_bytes = bytes;
    return p;
}

TEST(packet_pool, put_take_roundtrip)
{
    net::packet_pool pool;
    const auto h = pool.put(make_packet(1400));
    ASSERT_TRUE(static_cast<bool>(h));
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_EQ(pool.at(h).payload_bytes, 1400u);
    const net::packet out = pool.take(h);
    EXPECT_EQ(out.payload_bytes, 1400u);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(packet_pool, recycle_reuses_slots)
{
    net::packet_pool pool;
    // A put/take cycle must reuse the same slab record: steady-state memory
    // is bounded by peak live packets, not total packets ever pooled.
    (void)pool.take(pool.put(make_packet(1)));
    const std::size_t slots_after_first = pool.slots();
    for (std::uint32_t i = 0; i < 10'000; ++i)
        (void)pool.take(pool.put(make_packet(i)));
    EXPECT_EQ(pool.slots(), slots_after_first);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(packet_pool, bounded_pool_throws_on_exhaustion)
{
    net::packet_pool pool(2);
    const auto a = pool.put(make_packet(1));
    (void)pool.put(make_packet(2));
    EXPECT_THROW((void)pool.put(make_packet(3)), std::length_error);
    // Releasing a reference frees a slot; the pool must accept again.
    pool.release(a);
    EXPECT_NO_THROW((void)pool.put(make_packet(4)));
}

TEST(packet_pool, shared_references_copy_then_move)
{
    net::packet_pool pool;
    const auto h = pool.put(make_packet(7));
    pool.add_ref(h);
    // Two holders: the first take copies and the slot stays live.
    EXPECT_EQ(pool.take(h).payload_bytes, 7u);
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_EQ(pool.at(h).payload_bytes, 7u);
    // Last holder: the second take moves out and recycles.
    EXPECT_EQ(pool.take(h).payload_bytes, 7u);
    EXPECT_EQ(pool.live(), 0u);
}

TEST(packet_pool, stale_handle_throws_after_recycle)
{
    net::packet_pool pool;
    const auto old = pool.put(make_packet(1));
    (void)pool.take(old);
    // The slot is recycled into a new packet; the old handle's generation
    // no longer matches and every accessor must refuse it.
    const auto fresh = pool.put(make_packet(2));
    ASSERT_EQ(fresh.slot, old.slot);  // same record, new generation
    EXPECT_THROW((void)pool.at(old), std::logic_error);
    EXPECT_THROW((void)pool.take(old), std::logic_error);
    EXPECT_THROW(pool.add_ref(old), std::logic_error);
    EXPECT_THROW(pool.release(old), std::logic_error);
    // The live packet is untouched by the rejected accesses.
    EXPECT_EQ(pool.at(fresh).payload_bytes, 2u);
}

TEST(packet_pool, out_of_range_handle_throws)
{
    net::packet_pool pool;
    net::packet_pool::handle bogus;
    bogus.slot = 42;
    bogus.gen = 1;
    EXPECT_THROW((void)pool.at(bogus), std::logic_error);
}

}  // namespace
