// Packet profile table (§4.3.2): watermark semantics, standing queue,
// discard reconciliation, pruning.
#include <gtest/gtest.h>

#include "core/profile_table.h"

using namespace l4span;
using namespace l4span::core;

TEST(profile_table, standing_bytes_track_ingress_and_tx)
{
    profile_table t;
    t.on_ingress(1, 1000, sim::from_ms(0));
    t.on_ingress(2, 500, sim::from_ms(1));
    t.on_ingress(3, 700, sim::from_ms(2));
    EXPECT_EQ(t.standing_bytes(), 2200u);
    EXPECT_EQ(t.standing_packets(), 3u);

    int txed = 0;
    t.on_transmitted(2, sim::from_ms(5), [&](ran::pdcp_sn_t, std::uint32_t) { ++txed; });
    EXPECT_EQ(txed, 2);
    EXPECT_EQ(t.standing_bytes(), 700u);
    EXPECT_EQ(t.standing_packets(), 1u);
}

TEST(profile_table, watermark_is_idempotent)
{
    profile_table t;
    t.on_ingress(1, 100, 0);
    t.on_ingress(2, 100, 0);
    int txed = 0;
    auto count = [&](ran::pdcp_sn_t, std::uint32_t) { ++txed; };
    t.on_transmitted(1, sim::from_ms(1), count);
    t.on_transmitted(1, sim::from_ms(2), count);  // repeated watermark
    EXPECT_EQ(txed, 1);
    t.on_transmitted(2, sim::from_ms(3), count);
    EXPECT_EQ(txed, 2);
}

TEST(profile_table, timestamps_recorded)
{
    profile_table t;
    t.on_ingress(7, 1000, sim::from_ms(3));
    t.on_transmitted(7, sim::from_ms(9), {});
    t.on_delivered(7, sim::from_ms(15));
    const std::optional<profile_entry> e = t.find(7);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->t_ingress, sim::from_ms(3));
    EXPECT_EQ(e->t_transmitted, sim::from_ms(9));
    EXPECT_EQ(e->t_delivered, sim::from_ms(15));
}

TEST(profile_table, head_age_is_oldest_standing)
{
    profile_table t;
    t.on_ingress(1, 100, sim::from_ms(0));
    t.on_ingress(2, 100, sim::from_ms(5));
    EXPECT_EQ(t.head_age(sim::from_ms(20)), sim::from_ms(20));
    t.on_transmitted(1, sim::from_ms(21), {});
    EXPECT_EQ(t.head_age(sim::from_ms(25)), sim::from_ms(20));  // sn2, age 25-5
    t.on_transmitted(2, sim::from_ms(26), {});
    EXPECT_EQ(t.head_age(sim::from_ms(30)), 0);
}

TEST(profile_table, discard_before_tx_removes_standing)
{
    profile_table t;
    t.on_ingress(1, 1000, 0);
    t.on_ingress(2, 500, 0);
    t.on_discard(1);
    EXPECT_EQ(t.standing_bytes(), 500u);
    // Watermark over a discarded SN does not re-count it.
    int txed = 0;
    t.on_transmitted(2, sim::from_ms(1), [&](ran::pdcp_sn_t sn, std::uint32_t) {
        EXPECT_EQ(sn, 2u);
        ++txed;
    });
    EXPECT_EQ(txed, 1);
    EXPECT_EQ(t.standing_bytes(), 0u);
}

TEST(profile_table, discard_is_idempotent_and_bounds_checked)
{
    profile_table t;
    t.on_ingress(5, 100, 0);
    t.on_discard(5);
    t.on_discard(5);
    t.on_discard(99);
    t.on_discard(1);
    EXPECT_EQ(t.standing_bytes(), 0u);
}

TEST(profile_table, prune_drops_settled_old_entries)
{
    profile_table t;
    for (ran::pdcp_sn_t sn = 1; sn <= 10; ++sn) t.on_ingress(sn, 100, 0);
    t.on_transmitted(5, sim::from_ms(1), {});
    t.on_delivered(5, sim::from_ms(2));
    t.prune(sim::from_sec(3), sim::from_sec(1));
    EXPECT_EQ(t.size(), 5u) << "only transmitted+old entries leave";
    EXPECT_EQ(t.standing_bytes(), 500u);
    // Untransmitted entries must survive pruning regardless of age.
    EXPECT_TRUE(t.find(6).has_value());
    EXPECT_FALSE(t.find(5).has_value());
}

TEST(profile_table, prune_then_continue_operating)
{
    profile_table t;
    for (ran::pdcp_sn_t sn = 1; sn <= 5; ++sn) t.on_ingress(sn, 100, 0);
    t.on_transmitted(5, sim::from_ms(1), {});
    t.prune(sim::from_sec(2), sim::from_sec(1));
    EXPECT_EQ(t.size(), 0u);
    t.on_ingress(6, 300, sim::from_sec(2));
    EXPECT_EQ(t.standing_bytes(), 300u);
    int txed = 0;
    t.on_transmitted(6, sim::from_sec(2) + 1, [&](ran::pdcp_sn_t, std::uint32_t) { ++txed; });
    EXPECT_EQ(txed, 1);
}
