// Fault-injection end-to-end: deterministic chaos schedules replayed through
// scenario::topology. Single-fault scenarios pin down each class's recovery
// machinery (RLF re-establishment, handover-failure rollback and
// re-establishment, cell outage evacuation, wired-link flaps, impairment
// swaps); the soak runs throw every class at once across seeds and check the
// structural invariants (no dangling RNTIs, no leaked L4Span state, packet
// conservation); and the jobs test pins byte-identity of a chaos run.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/l4span.h"
#include "scenario/topology.h"
#include "topo/fault_plan.h"

using namespace l4span;

namespace {

scenario::topology_spec fault_topo_spec(int cells, int ues_per_cell,
                                        scenario::cu_mode cu, int jobs = 1)
{
    scenario::topology_spec spec;
    spec.num_cells = cells;
    spec.ues_per_cell = ues_per_cell;
    spec.cell.cu = cu;
    spec.cell.channel = "static";
    spec.cell.seed = 5;
    spec.jobs = jobs;
    return spec;
}

topo::fault_plan_config base_fault_cfg(const scenario::topology_spec& spec,
                                       sim::tick end)
{
    topo::fault_plan_config cfg;
    cfg.num_cells = spec.num_cells;
    cfg.ues_per_cell = spec.ues_per_cell;
    cfg.start = sim::from_ms(800);
    cfg.end = end;
    cfg.seed = 21;
    return cfg;
}

// No stale L4Span state: every RNTI the cell's entity still tracks must be
// an RNTI the gNB still serves (detach/invalidate must not leak entries).
void expect_no_leaked_hook_state(scenario::topology& topo)
{
    for (int c = 0; c < topo.num_cells(); ++c) {
        core::l4span* ent = topo.cell_at(c).l4span_layer();
        if (!ent) continue;
        const auto tracked = ent->tracked_ues();
        const auto active = topo.cell_at(c).gnb().active_rntis();
        for (const ran::rnti_t rnti : tracked)
            EXPECT_TRUE(std::find(active.begin(), active.end(), rnti) !=
                        active.end())
                << "cell " << c << " leaked L4Span state for RNTI " << rnti;
    }
}

// Every UE the topology believes is attached must resolve at its serving
// cell, and no cell may serve more UEs than exist.
void expect_consistent_attachment(scenario::topology& topo)
{
    std::size_t total_active = 0;
    for (int c = 0; c < topo.num_cells(); ++c)
        total_active += topo.cell_at(c).gnb().active_ues();
    EXPECT_LE(total_active, static_cast<std::size_t>(topo.num_ues()));
    // Note: RNTIs are per-gNB counters, so one numeric RNTI can exist at two
    // cells for two *different* UEs — cross-cell has_ue comparisons would be
    // meaningless. The per-UE invariant is that the serving pointer is a
    // valid cell; a UE mid-recovery at run end is legitimately detached.
    for (int u = 0; u < topo.num_ues(); ++u) {
        const int serving = topo.serving_cell(u);
        ASSERT_GE(serving, 0);
        ASSERT_LT(serving, topo.num_cells());
    }
}

}  // namespace

// --- single-class scenarios -------------------------------------------------

TEST(fault_chaos, rlf_reestablishes_and_flow_survives)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int u = 0; u < topo.num_ues(); ++u) {
        scenario::flow_spec f;
        f.cca = "prague";
        f.ue = u;
        handles.push_back(topo.add_flow(f));
    }
    auto cfg = base_fault_cfg(spec, sim::from_ms(2500));
    cfg.rlf_per_ue_per_sec = 2.0;
    // Outages comfortably above the gNB's 200 ms RLF timer, so every
    // injected outage is detected and declared.
    cfg.rlf_outage_mean = sim::from_ms(600);
    cfg.rlf_outage_min = sim::from_ms(400);
    const topo::fault_plan plan(cfg);
    ASSERT_GE(plan.count(topo::fault_class::rlf), 1u);
    topo.apply_faults(plan);
    topo.run(sim::from_sec(4));

    EXPECT_EQ(topo.faults_armed(topo::fault_class::rlf),
              plan.count(topo::fault_class::rlf));
    EXPECT_GE(topo.faults_injected(topo::fault_class::rlf), 1u);
    EXPECT_LE(topo.faults_injected(topo::fault_class::rlf),
              topo.faults_armed(topo::fault_class::rlf));
    // Detection -> detach -> backoff -> re-attach, once per declared RLF.
    EXPECT_GE(topo.rlf_detected(), 1u);
    EXPECT_LE(topo.rlf_detected(), topo.faults_injected(topo::fault_class::rlf));
    EXPECT_EQ(topo.reestablishments(), topo.rlf_detected());
    // Service interruption: at least the re-establishment backoff, and far
    // below the outage length (the UE re-attaches at the healthy neighbor
    // instead of waiting the radio out).
    const auto rec = topo.recovery_ms();
    ASSERT_EQ(rec.size(), topo.reestablishments());
    for (const double ms : rec) {
        EXPECT_GE(ms, sim::to_ms(spec.reestablish_backoff));
        EXPECT_LT(ms, 400.0);
    }
    // The flows kept delivering after the last possible recovery.
    for (const int h : handles) {
        EXPECT_GT(topo.delivered_bytes(h), 1u << 20);
        EXPECT_GT(topo.goodput_series(h).mbps_at(sim::from_ms(3700)), 0.5);
    }
    expect_consistent_attachment(topo);
    expect_no_leaked_hook_state(topo);
}

TEST(fault_chaos, handover_failure_rolls_back_to_source)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int u = 0; u < topo.num_ues(); ++u) {
        scenario::flow_spec f;
        f.cca = "cubic";
        f.ue = u;
        handles.push_back(topo.add_flow(f));
    }
    auto cfg = base_fault_cfg(spec, sim::from_ms(2500));
    cfg.ho_failure_per_ue_per_sec = 1.5;
    cfg.ho_failure_reestablish_fraction = 0.0;  // all roll back
    const topo::fault_plan plan(cfg);
    ASSERT_GE(plan.count(topo::fault_class::handover_failure), 1u);
    topo.apply_faults(plan);
    topo.run(sim::from_sec(4));

    EXPECT_GE(topo.ho_failures(), 1u);
    // Every sabotaged handover returned its context to the source: the UE
    // never moved, and no handover completed (there is no other mobility).
    EXPECT_EQ(topo.ho_rollbacks(), topo.ho_failures());
    EXPECT_EQ(topo.handovers_completed(), 0u);
    EXPECT_EQ(topo.reestablishments(), 0u);
    for (int u = 0; u < topo.num_ues(); ++u) {
        EXPECT_EQ(topo.serving_cell(u), topo.home_cell(u));
        EXPECT_TRUE(topo.cell_at(topo.serving_cell(u)).has_ue(topo.ue_rnti(u)));
    }
    // Rollback re-admits the exported context intact — forwarded SDUs come
    // back exactly once, so TCP sees no loss it must repair.
    for (const int h : handles) {
        EXPECT_EQ(topo.flow_retransmits(h), 0u);
        EXPECT_GT(topo.goodput_series(h).mbps_at(sim::from_ms(3700)), 0.5);
    }
    expect_no_leaked_hook_state(topo);
}

TEST(fault_chaos, handover_failure_reestablishes_with_stripped_state)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int u = 0; u < topo.num_ues(); ++u) {
        scenario::flow_spec f;
        f.cca = "prague";
        f.ue = u;
        handles.push_back(topo.add_flow(f));
    }
    auto cfg = base_fault_cfg(spec, sim::from_ms(2500));
    cfg.ho_failure_per_ue_per_sec = 1.5;
    cfg.ho_failure_reestablish_fraction = 1.0;  // context lost every time
    const topo::fault_plan plan(cfg);
    ASSERT_GE(plan.count(topo::fault_class::handover_failure), 1u);
    topo.apply_faults(plan);
    topo.run(sim::from_sec(4));

    EXPECT_GE(topo.ho_failures(), 1u);
    EXPECT_EQ(topo.ho_rollbacks(), 0u);
    // Every failure recovered as an RLF re-establishment toward the target.
    EXPECT_EQ(topo.reestablishments(), topo.ho_failures());
    const auto rec = topo.recovery_ms();
    ASSERT_EQ(rec.size(), topo.reestablishments());
    for (const double ms : rec)
        EXPECT_GE(ms, sim::to_ms(spec.reestablish_backoff));
    // The flows survived losing their RLC/PDCP state end-to-end.
    for (const int h : handles) {
        EXPECT_GT(topo.delivered_bytes(h), 1u << 20);
        EXPECT_GT(topo.goodput_series(h).mbps_at(sim::from_ms(3700)), 0.5);
    }
    expect_consistent_attachment(topo);
    expect_no_leaked_hook_state(topo);
}

TEST(fault_chaos, cell_outage_evacuates_and_repatriates)
{
    auto spec = fault_topo_spec(3, 1, scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int u = 0; u < topo.num_ues(); ++u) {
        scenario::flow_spec f;
        f.cca = "prague";
        f.ue = u;
        handles.push_back(topo.add_flow(f));
    }
    auto cfg = base_fault_cfg(spec, sim::from_ms(2500));
    cfg.outages_per_cell_per_sec = 0.8;
    cfg.cell_outage_mean = sim::from_ms(500);
    cfg.cell_outage_min = sim::from_ms(300);
    const topo::fault_plan plan(cfg);
    ASSERT_GE(plan.count(topo::fault_class::cell_outage), 1u);
    // Run until well past the last recovery, so repatriation settles.
    sim::tick last_recovery = 0;
    for (const auto& ev : plan.schedule())
        last_recovery = std::max(last_recovery, ev.when + ev.duration);
    topo.apply_faults(plan);
    topo.run(std::max(sim::from_sec(4), last_recovery + sim::from_sec(1)));

    EXPECT_EQ(topo.faults_injected(topo::fault_class::cell_outage),
              plan.count(topo::fault_class::cell_outage));
    // Evacuations are ordinary forced handovers.
    EXPECT_GE(topo.handovers_started(), 1u);
    EXPECT_GE(topo.handovers_completed(), 1u);
    for (int c = 0; c < topo.num_cells(); ++c)
        EXPECT_FALSE(topo.cell_is_down(c)) << "cell " << c;
    // Every UE settled back at an up cell and kept its flow alive.
    for (int u = 0; u < topo.num_ues(); ++u)
        EXPECT_TRUE(topo.cell_at(topo.serving_cell(u)).has_ue(topo.ue_rnti(u)));
    for (const int h : handles)
        EXPECT_GT(topo.delivered_bytes(h), 1u << 20);
    expect_consistent_attachment(topo);
    expect_no_leaked_hook_state(topo);
}

TEST(fault_chaos, link_flap_stalls_and_recovers_tcp_and_quic)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    spec.wired_bps = 50e6;  // mounts the flappable server->core hop
    scenario::topology topo(spec);
    scenario::flow_spec tcp_f;
    tcp_f.cca = "cubic";
    tcp_f.ue = 0;
    const int tcp_h = topo.add_flow(tcp_f);
    scenario::flow_spec quic_f;
    quic_f.cca = "quic-prague";
    quic_f.ue = 1;
    const int quic_h = topo.add_flow(quic_f);

    auto cfg = base_fault_cfg(spec, sim::from_ms(2500));
    cfg.flaps_per_cell_per_sec = 1.5;
    // Multi-second blackout: the transports must ride it out on RTO/PTO
    // backoff and resume when the link pumps again.
    cfg.flap_mean = sim::from_ms(2000);
    cfg.flap_min = sim::from_ms(1500);
    const topo::fault_plan plan(cfg);
    ASSERT_GE(plan.count(topo::fault_class::link_flap), 1u);
    sim::tick last_recovery = 0;
    for (const auto& ev : plan.schedule())
        last_recovery = std::max(last_recovery, ev.when + ev.duration);
    topo.apply_faults(plan);
    const sim::tick horizon =
        std::max(sim::from_sec(5), last_recovery + sim::from_sec(2));
    topo.run(horizon);

    ASSERT_NE(topo.wired_dl_link(0), nullptr);
    ASSERT_NE(topo.wired_dl_link(1), nullptr);
    EXPECT_EQ(topo.faults_injected(topo::fault_class::link_flap),
              plan.count(topo::fault_class::link_flap));
    // Both transports are alive again after the last flap recovered.
    EXPECT_GT(topo.goodput_series(tcp_h).mbps_at(horizon - sim::from_ms(300)), 0.5);
    EXPECT_GT(topo.goodput_series(quic_h).mbps_at(horizon - sim::from_ms(300)), 0.5);
    EXPECT_GT(topo.delivered_bytes(tcp_h), 1u << 20);
    EXPECT_GT(topo.delivered_bytes(quic_h), 1u << 20);
}

TEST(fault_chaos, link_flap_without_wired_hop_is_rejected)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);  // wired_bps = 0
    scenario::topology topo(spec);
    auto cfg = base_fault_cfg(spec, sim::from_ms(2000));
    cfg.flaps_per_cell_per_sec = 1.0;
    EXPECT_THROW(topo.apply_faults(topo::fault_plan(cfg)), std::invalid_argument);
}

TEST(fault_chaos, impairment_swap_reroutes_mid_run)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    spec.cell.impair_dl.force_stage = true;  // clean stage to swap against
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.cca = "prague";
    f.ue = 0;
    const int h = topo.add_flow(f);

    auto cfg = base_fault_cfg(spec, sim::from_ms(2500));
    cfg.swaps_per_cell_per_sec = 1.5;
    // First swap reroutes onto a stripping transit, the next back to clean.
    topo::impairment_spec stripping;
    stripping.strip_ect = 1.0;
    topo::impairment_spec clean;
    clean.force_stage = true;
    cfg.swap_profiles = {stripping, clean};
    const topo::fault_plan plan(cfg);
    std::size_t cell0_swaps = 0;
    for (const auto& ev : plan.schedule())
        if (ev.cls == topo::fault_class::impairment_swap && ev.cell == 0)
            ++cell0_swaps;
    ASSERT_GE(cell0_swaps, 1u);
    topo.apply_faults(plan);
    topo.run(sim::from_sec(4));

    EXPECT_EQ(topo.faults_injected(topo::fault_class::impairment_swap),
              plan.count(topo::fault_class::impairment_swap));
    const topo::path_impairment* st = topo.impair_dl_stage(0);
    ASSERT_NE(st, nullptr);
    // The stripping profile was live for some window of a continuously
    // sending flow, and stats survived the swap (cumulative conservation).
    EXPECT_GT(st->stats().stripped, 0u);
    EXPECT_EQ(st->stats().input + st->stats().duplicated,
              st->stats().delivered + st->stats().lost + st->held_packets());
    EXPECT_GT(topo.delivered_bytes(h), 1u << 20);
}

TEST(fault_chaos, quic_survives_rlf_on_preissued_cids)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    scenario::flow_spec f;
    f.cca = "quic-prague";
    f.ue = 0;
    const int h = topo.add_flow(f);
    auto cfg = base_fault_cfg(spec, sim::from_ms(2000));
    cfg.rlf_per_ue_per_sec = 1.5;
    cfg.rlf_outage_mean = sim::from_ms(600);
    cfg.rlf_outage_min = sim::from_ms(400);
    const topo::fault_plan plan(cfg);
    ASSERT_GE(plan.count(topo::fault_class::rlf), 1u);
    topo.apply_faults(plan);
    topo.run(sim::from_sec(4));

    ASSERT_GE(topo.rlf_detected(), 1u);
    const transport::quic_sender* q = topo.quic_flow(h);
    ASSERT_NE(q, nullptr);
    // Re-establishment is a path switch: the connection rotated to its next
    // pre-issued CID instead of handshaking again, and kept delivering.
    EXPECT_GE(q->path_migrations(), 1u);
    EXPECT_GT(topo.goodput_series(h).mbps_at(sim::from_ms(3700)), 0.5);
    expect_no_leaked_hook_state(topo);
}

// --- determinism ------------------------------------------------------------

namespace {

struct chaos_metrics {
    std::vector<double> owd;
    std::vector<double> rtt;
    std::vector<std::uint64_t> delivered;
    std::vector<double> recovery;
    std::uint64_t handovers = 0;
    std::uint64_t rlf = 0;
    std::uint64_t reest = 0;
    std::uint64_t ho_fail = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t events = 0;
    std::uint64_t injected = 0;

    bool operator==(const chaos_metrics&) const = default;
};

chaos_metrics run_chaos(int jobs, std::uint64_t seed)
{
    auto spec = fault_topo_spec(4, 2, scenario::cu_mode::l4span, jobs);
    spec.cell.channel = "mobile";
    spec.cell.seed = 11;
    spec.wired_bps = 100e6;
    spec.cell.impair_dl.force_stage = true;
    scenario::topology topo(spec);
    std::vector<int> handles;
    for (int u = 0; u < topo.num_ues(); ++u) {
        scenario::flow_spec f;
        f.cca = u % 2 ? "cubic" : "prague";
        f.ue = u;
        handles.push_back(topo.add_flow(f));
    }
    topo::mobility_config mob;
    mob.num_cells = 4;
    mob.ues_per_cell = 2;
    mob.handovers_per_ue_per_sec = 0.5;
    mob.start = sim::from_ms(400);
    mob.end = sim::from_ms(1800);
    mob.seed = 3;
    topo.apply(topo::mobility_model(mob).schedule());

    topo::fault_plan_config cfg;
    cfg.num_cells = 4;
    cfg.ues_per_cell = 2;
    cfg.start = sim::from_ms(500);
    cfg.end = sim::from_ms(1800);
    cfg.seed = seed;
    cfg.rlf_per_ue_per_sec = 0.8;
    cfg.ho_failure_per_ue_per_sec = 0.5;
    cfg.outages_per_cell_per_sec = 0.3;
    cfg.flaps_per_cell_per_sec = 0.3;
    cfg.swaps_per_cell_per_sec = 0.3;
    topo::impairment_spec stripping;
    stripping.strip_ect = 1.0;
    topo::impairment_spec clean;
    clean.force_stage = true;
    cfg.swap_profiles = {stripping, clean};
    topo.apply_faults(topo::fault_plan(cfg));
    topo.run(sim::from_ms(2500));

    chaos_metrics m;
    for (const int h : handles) {
        for (double v : topo.owd_ms(h).raw()) m.owd.push_back(v);
        for (double v : topo.rtt_ms(h).raw()) m.rtt.push_back(v);
        m.delivered.push_back(topo.delivered_bytes(h));
    }
    m.recovery = topo.recovery_ms();
    m.handovers = topo.handovers_completed();
    m.rlf = topo.rlf_detected();
    m.reest = topo.reestablishments();
    m.ho_fail = topo.ho_failures();
    m.rollbacks = topo.ho_rollbacks();
    m.events = topo.processed_events();
    for (std::size_t c = 0; c < topo::k_num_fault_classes; ++c)
        m.injected += topo.faults_injected(static_cast<topo::fault_class>(c));
    return m;
}

}  // namespace

TEST(fault_chaos, chaos_run_is_byte_identical_for_any_worker_count)
{
    const chaos_metrics serial = run_chaos(1, 77);
    const chaos_metrics parallel = run_chaos(4, 77);
    EXPECT_GT(serial.injected, 0u);
    EXPECT_FALSE(serial.owd.empty());
    EXPECT_EQ(serial, parallel);
}

// --- seeded chaos soak ------------------------------------------------------

TEST(fault_chaos, soak_invariants_hold_across_seeds)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto spec = fault_topo_spec(3, 2, scenario::cu_mode::l4span);
        spec.wired_bps = 100e6;
        spec.cell.impair_dl.force_stage = true;
        spec.cell.seed = 5 + seed;
        scenario::topology topo(spec);
        std::vector<int> handles;
        std::vector<std::uint64_t> generated_frames;
        for (int u = 0; u < topo.num_ues(); ++u) {
            scenario::flow_spec f;
            f.ue = u;
            switch (u % 3) {
            case 0: f.cca = "prague"; break;
            case 1: f.cca = "cubic"; break;
            case 2:
                f.cca = "quic-prague";
                f.fps = 30.0;  // interactive: exercises frame accounting
                break;
            }
            handles.push_back(topo.add_flow(f));
        }
        topo::fault_plan_config cfg;
        cfg.num_cells = 3;
        cfg.ues_per_cell = 2;
        cfg.start = sim::from_ms(500);
        cfg.end = sim::from_ms(1800);
        cfg.seed = seed;
        cfg.rlf_per_ue_per_sec = 1.0;
        cfg.ho_failure_per_ue_per_sec = 0.6;
        cfg.outages_per_cell_per_sec = 0.4;
        cfg.flaps_per_cell_per_sec = 0.4;
        cfg.swaps_per_cell_per_sec = 0.4;
        topo::impairment_spec stripping;
        stripping.strip_ect = 0.7;
        topo::impairment_spec clean;
        clean.force_stage = true;
        cfg.swap_profiles = {stripping, clean};
        const topo::fault_plan plan(cfg);
        ASSERT_FALSE(plan.schedule().empty());
        topo.apply_faults(plan);
        topo.run(sim::from_ms(2500));

        // Counter sanity: nothing fires that was not armed, detections only
        // from injected outages, recoveries only from lost service.
        for (std::size_t c = 0; c < topo::k_num_fault_classes; ++c) {
            const auto cls = static_cast<topo::fault_class>(c);
            EXPECT_LE(topo.faults_injected(cls), topo.faults_armed(cls));
            EXPECT_EQ(topo.faults_armed(cls), plan.count(cls));
        }
        EXPECT_LE(topo.rlf_detected(),
                  topo.faults_injected(topo::fault_class::rlf));
        EXPECT_LE(topo.reestablishments(), topo.rlf_detected() + topo.ho_failures());
        EXPECT_LE(topo.ho_rollbacks(), topo.ho_failures());
        for (const double ms : topo.recovery_ms()) EXPECT_GT(ms, 0.0);

        // Structural invariants after the dust settles.
        expect_consistent_attachment(topo);
        expect_no_leaked_hook_state(topo);

        // Packet conservation through every impairment stage.
        for (int c = 0; c < topo.num_cells(); ++c) {
            const topo::path_impairment* st = topo.impair_dl_stage(c);
            ASSERT_NE(st, nullptr);
            EXPECT_EQ(st->stats().input + st->stats().duplicated,
                      st->stats().delivered + st->stats().lost + st->held_packets());
        }

        // Frame accounting: an interactive source never completes more
        // frames than it sent.
        for (const int h : handles) {
            if (const media::frame_source* fs = topo.frame_stats(h)) {
                EXPECT_LE(fs->frames_completed(), fs->frames_sent());
                EXPECT_LE(fs->stalled_frames(), fs->frames_completed());
            }
            // Delivery is cumulative and survived the chaos.
            EXPECT_GT(topo.delivered_bytes(h), 0u);
        }
    }
}

// --- guard rails ------------------------------------------------------------

TEST(fault_chaos, apply_faults_validates_shape_and_lifecycle)
{
    auto spec = fault_topo_spec(2, 1, scenario::cu_mode::l4span);
    scenario::topology topo(spec);
    auto cfg = base_fault_cfg(spec, sim::from_ms(2000));
    cfg.rlf_per_ue_per_sec = 1.0;

    auto wrong_shape = cfg;
    wrong_shape.num_cells = 3;
    EXPECT_THROW(topo.apply_faults(topo::fault_plan(wrong_shape)),
                 std::invalid_argument);

    auto swap_cfg = base_fault_cfg(spec, sim::from_ms(2000));
    swap_cfg.swaps_per_cell_per_sec = 1.0;
    swap_cfg.swap_profiles.emplace_back();
    swap_cfg.swap_profiles.back().bleach_ce = 0.5;
    // No impairment stage mounted -> nothing to swap.
    EXPECT_THROW(topo.apply_faults(topo::fault_plan(swap_cfg)),
                 std::invalid_argument);

    topo.apply_faults(topo::fault_plan(cfg));
    EXPECT_THROW(topo.apply_faults(topo::fault_plan(cfg)), std::logic_error);
    topo.run(sim::from_ms(1500));
    EXPECT_GE(topo.faults_armed(topo::fault_class::rlf), 1u);
}
