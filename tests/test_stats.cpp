// Percentiles, CDFs, time series.
#include <gtest/gtest.h>

#include "stats/sample_set.h"
#include "stats/table.h"
#include "stats/timeseries.h"

using namespace l4span;
using stats::sample_set;

TEST(sample_set, empty_is_safe)
{
    sample_set s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_TRUE(s.cdf().empty());
}

TEST(sample_set, order_statistics)
{
    sample_set s;
    for (int i = 10; i >= 1; --i) s.add(i);  // 1..10 reversed
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.5);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
    EXPECT_NEAR(s.percentile(25), 3.25, 1e-9);
    EXPECT_NEAR(s.percentile(75), 7.75, 1e-9);
}

TEST(sample_set, moments)
{
    sample_set s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
}

TEST(sample_set, interleaved_add_and_query)
{
    // Percentile queries sort lazily; adding afterwards must still work.
    sample_set s;
    s.add(3);
    s.add(1);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
    s.add(2);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
    s.add(10);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(sample_set, fraction_below)
{
    sample_set s;
    for (int i = 1; i <= 100; ++i) s.add(i);
    EXPECT_DOUBLE_EQ(s.fraction_below(50), 0.5);
    EXPECT_DOUBLE_EQ(s.fraction_below(0), 0.0);
    EXPECT_DOUBLE_EQ(s.fraction_below(1000), 1.0);
}

TEST(sample_set, cdf_monotone)
{
    sample_set s;
    for (int i = 0; i < 500; ++i) s.add((i * 37) % 101);
    const auto cdf = s.cdf(25);
    ASSERT_EQ(cdf.size(), 25u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].value, cdf[i - 1].value);
        EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
    }
    EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(rate_series, bins_and_mbps)
{
    stats::rate_series r(sim::from_ms(100));
    // 125000 bytes in one 100 ms bin = 10 Mbit/s.
    r.add(sim::from_ms(50), 125000);
    EXPECT_NEAR(r.mbps_at(sim::from_ms(50)), 10.0, 1e-9);
    EXPECT_NEAR(r.mbps_at(sim::from_ms(150)), 0.0, 1e-9);
    r.add(sim::from_ms(250), 62500);
    const auto v = r.mbps();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_NEAR(v[2], 5.0, 1e-9);
    EXPECT_NEAR(r.total_mbps(sim::from_ms(300)), 5.0, 1e-9);
}

TEST(value_series, means_per_bin)
{
    stats::value_series v(sim::from_ms(10));
    v.add(sim::from_ms(5), 10.0);
    v.add(sim::from_ms(6), 20.0);
    v.add(sim::from_ms(15), 7.0);
    const auto m = v.means();
    ASSERT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m[0], 15.0);
    EXPECT_DOUBLE_EQ(m[1], 7.0);
}

TEST(table, renders_aligned_rows)
{
    stats::table t({"a", "long-header"});
    t.add_row({"1", "2"});
    t.add_row({"333", "4"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("long-header"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_EQ(stats::table::num(3.14159, 2), "3.14");
}
