// PRB allocation policies.
#include <gtest/gtest.h>

#include <numeric>

#include "ran/mac.h"

using namespace l4span::ran;

namespace {

mac_config cfg(sched_policy p)
{
    mac_config c;
    c.policy = p;
    return c;
}

sched_input in(std::uint32_t idx, std::uint64_t backlog, double bpp = 500.0)
{
    sched_input s;
    s.ue_index = idx;
    s.backlog_bytes = backlog;
    s.bytes_per_prb = bpp;
    return s;
}

}  // namespace

TEST(round_robin, splits_evenly)
{
    prb_allocator a(cfg(sched_policy::round_robin));
    for (int i = 0; i < 3; ++i) a.add_ue();
    auto g = a.allocate({in(0, 1 << 20), in(1, 1 << 20), in(2, 1 << 20)}, 51);
    EXPECT_EQ(std::accumulate(g.begin(), g.end(), 0), 51);
    for (int v : g) EXPECT_GE(v, 51 / 3);
}

TEST(round_robin, remainder_rotates)
{
    prb_allocator a(cfg(sched_policy::round_robin));
    for (int i = 0; i < 2; ++i) a.add_ue();
    // 51 / 2 = 25 r 1: the extra PRB should alternate between the UEs.
    auto g1 = a.allocate({in(0, 1 << 20), in(1, 1 << 20)}, 51);
    auto g2 = a.allocate({in(0, 1 << 20), in(1, 1 << 20)}, 51);
    EXPECT_NE(g1[0], g2[0]) << "remainder must rotate";
    EXPECT_EQ(g1[0] + g1[1], 51);
    EXPECT_EQ(g2[0] + g2[1], 51);
}

TEST(round_robin, single_ue_gets_everything)
{
    prb_allocator a(cfg(sched_policy::round_robin));
    a.add_ue();
    auto g = a.allocate({in(0, 1 << 20)}, 51);
    EXPECT_EQ(g[0], 51);
}

TEST(round_robin, empty_input)
{
    prb_allocator a(cfg(sched_policy::round_robin));
    EXPECT_TRUE(a.allocate({}, 51).empty());
}

TEST(proportional_fair, favors_good_channel_when_averages_equal)
{
    prb_allocator a(cfg(sched_policy::proportional_fair));
    for (int i = 0; i < 2; ++i) a.add_ue();
    auto g = a.allocate({in(0, 1 << 20, 1000.0), in(1, 1 << 20, 250.0)}, 48);
    EXPECT_GT(g[0], g[1]) << "higher instantaneous rate wins at equal averages";
}

TEST(proportional_fair, throughput_history_rebalances)
{
    prb_allocator a(cfg(sched_policy::proportional_fair));
    for (int i = 0; i < 2; ++i) a.add_ue();
    // UE0 has been served heavily; UE1 starved. Equal channels now.
    for (int i = 0; i < 50; ++i) {
        a.update_average(0, 20000.0);
        a.update_average(1, 0.0);
    }
    auto g = a.allocate({in(0, 1 << 20, 500.0), in(1, 1 << 20, 500.0)}, 48);
    EXPECT_GT(g[1], g[0]) << "PF must compensate the starved UE";
}

TEST(proportional_fair, does_not_overgrant_small_backlog)
{
    prb_allocator a(cfg(sched_policy::proportional_fair));
    for (int i = 0; i < 2; ++i) a.add_ue();
    // UE0 only needs ~1 PRB worth of bytes; UE1 is greedy.
    auto g = a.allocate({in(0, 400, 500.0), in(1, 1 << 20, 500.0)}, 48);
    EXPECT_LE(g[0], 8);
    EXPECT_GE(g[1], 40);
}

TEST(proportional_fair, all_prbs_spent_when_demand_exists)
{
    prb_allocator a(cfg(sched_policy::proportional_fair));
    for (int i = 0; i < 4; ++i) a.add_ue();
    auto g = a.allocate(
        {in(0, 1 << 20, 300.0), in(1, 1 << 20, 600.0), in(2, 1 << 20, 900.0),
         in(3, 1 << 20, 450.0)},
        48);
    EXPECT_EQ(std::accumulate(g.begin(), g.end(), 0), 48);
}
