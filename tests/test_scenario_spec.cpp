// Conformance suite for the scenario engine (ISSUE: schema-driven
// experiment harness). Pins the three load-bearing properties:
//
//   1. export -> parse -> export is the identity on bytes, for every
//      builtin scenario in both full and --quick form;
//   2. running a builtin through the scenario engine and running its
//      exported JSON back through parse + run_scenario produces
//      byte-identical stdout and JSON summaries — the bench binary and
//      `l4span_run` are thin wrappers over exactly these two calls, so
//      this is the bench-vs-driver byte-identity claim, in-process;
//   3. results are independent of --jobs (1 vs 4 on a scenario file).
//
// Plus: file-path round-trip via write_scenario_file/load_scenario_file,
// and validation diagnostics naming the offending key and source line.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "scenario/grid_runner.h"
#include "scenario/scenario_run.h"
#include "scenario/scenario_spec.h"
#include "stats/json.h"

using namespace l4span;
using scenario::bench_args;
using scenario::builtin_scenario;
using scenario::export_scenario;
using scenario::parse_scenario_text;
using scenario::run_scenario;
using scenario::scenario_error;
using scenario::scenario_spec;

namespace {

// Runs a spec with stdout captured; returns {stdout bytes, summary dump}.
struct run_output {
    std::string out;
    std::string summary;
};

run_output run_captured(const scenario_spec& spec, int jobs)
{
    bench_args args;
    args.jobs = jobs;
    args.quick = spec.quick;
    stats::json summary;
    testing::internal::CaptureStdout();
    const int rc = run_scenario(spec, args, &summary);
    run_output r;
    r.out = testing::internal::GetCapturedStdout();
    r.summary = summary.dump();
    EXPECT_EQ(rc, 0);
    return r;
}

const char* k_builtins[] = {"fig09", "fig16", "ecn_impairment", "fault_chaos"};

}  // namespace

TEST(scenario_spec, export_parse_export_is_identity_for_builtins)
{
    for (const char* name : k_builtins) {
        for (bool quick : {false, true}) {
            SCOPED_TRACE(std::string(name) + (quick ? " --quick" : ""));
            const auto spec = builtin_scenario(name, quick);
            const std::string once = export_scenario(spec).dump();
            const auto reparsed = parse_scenario_text(once, "<roundtrip>");
            EXPECT_EQ(export_scenario(reparsed).dump(), once);
        }
    }
}

// The bench binaries call builtin_scenario() + run_scenario(); l4span_run
// calls parse + run_scenario(). Equal output here means a bench and its
// exported scenario file produce byte-identical stdout and summaries.
TEST(scenario_spec, builtin_and_reparsed_export_run_byte_identical)
{
    for (const char* name : k_builtins) {
        SCOPED_TRACE(name);
        const auto spec = builtin_scenario(name, /*quick=*/true);
        const auto reparsed =
            parse_scenario_text(export_scenario(spec).dump(), "<export>");
        const auto a = run_captured(spec, /*jobs=*/2);
        const auto b = run_captured(reparsed, /*jobs=*/2);
        EXPECT_EQ(a.out, b.out);
        EXPECT_EQ(a.summary, b.summary);
        EXPECT_FALSE(a.out.empty());
        EXPECT_NE(a.summary.find("\"figure\""), std::string::npos);
    }
}

TEST(scenario_spec, results_independent_of_jobs)
{
    const auto spec = builtin_scenario("fig09", /*quick=*/true);
    const auto serial = run_captured(spec, /*jobs=*/1);
    const auto sharded = run_captured(spec, /*jobs=*/4);
    EXPECT_EQ(serial.out, sharded.out);
    EXPECT_EQ(serial.summary, sharded.summary);
}

TEST(scenario_spec, file_roundtrip_through_disk)
{
    const auto spec = builtin_scenario("fig16", /*quick=*/true);
    const std::string path = testing::TempDir() + "l4span_scn_rt.json";
    ASSERT_EQ(scenario::write_scenario_file(path, spec), 0);
    const auto loaded = scenario::load_scenario_file(path);
    EXPECT_EQ(export_scenario(loaded).dump(), export_scenario(spec).dump());
    std::remove(path.c_str());
}

TEST(scenario_spec, missing_file_names_the_path)
{
    try {
        scenario::load_scenario_file("/nonexistent/l4span.json");
        FAIL() << "unreadable path must throw";
    } catch (const scenario_error& e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent/l4span.json"),
                  std::string::npos)
            << e.what();
    }
}

TEST(scenario_spec, unknown_key_error_names_key_and_line)
{
    auto doc = export_scenario(builtin_scenario("fig09", true));
    // Inject an unknown key into the tcp_grid section and find its line.
    std::string text = doc.dump();
    const std::string needle = "\"seed_base\"";
    const auto pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, "\"rtts_msec\": [1.0], ");
    try {
        parse_scenario_text(text, "<test>");
        FAIL() << "unknown key must be rejected";
    } catch (const scenario_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rtts_msec"), std::string::npos) << msg;
        EXPECT_NE(msg.find("line"), std::string::npos) << msg;
        // Diagnostic lists the valid keys so the fix is one glance away.
        EXPECT_NE(msg.find("rtts_ms"), std::string::npos) << msg;
    }
}

TEST(scenario_spec, out_of_range_value_names_key)
{
    auto doc = export_scenario(builtin_scenario("ecn_impairment", true));
    std::string text = doc.dump();
    const std::string needle = "\"loss\": 0";
    const auto pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, needle.size(), "\"loss\": 2.5");
    try {
        parse_scenario_text(text, "<test>");
        FAIL() << "loss probability > 1 must be rejected";
    } catch (const scenario_error& e) {
        EXPECT_NE(std::string(e.what()).find("loss"), std::string::npos)
            << e.what();
    }
}

TEST(scenario_spec, wrong_schema_tag_rejected)
{
    EXPECT_THROW(
        parse_scenario_text(R"({"schema": "l4span-scenario-v0"})", "<test>"),
        scenario_error);
    EXPECT_THROW(parse_scenario_text(R"({"figure": "x"})", "<test>"),
                 scenario_error);
}

TEST(scenario_spec, unknown_family_lists_valid_ones)
{
    try {
        parse_scenario_text(
            R"({"schema": "l4span-scenario-v1", "figure": "x", "title": "t",)"
            R"( "paper_ref": "r", "family": "mesh", "quick": false,)"
            R"( "duration_s": 1})",
            "<test>");
        FAIL() << "unknown family must be rejected";
    } catch (const scenario_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("mesh"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cell_flows"), std::string::npos) << msg;
    }
}

TEST(scenario_spec, builtin_unknown_name_throws)
{
    EXPECT_THROW(builtin_scenario("fig99", false), scenario_error);
}
