// Congestion-controller control laws, exercised directly (no network), and
// the ECN feedback arithmetic shared by the TCP and QUIC engines.
#include <gtest/gtest.h>

#include "transport/bbr.h"
#include "transport/cc.h"
#include "transport/cubic.h"
#include "transport/ecn_feedback.h"
#include "transport/prague.h"
#include "transport/reno.h"

using namespace l4span;
using namespace l4span::transport;

namespace {

constexpr std::uint32_t kMss = 1400;

ack_sample ack(std::uint32_t bytes, sim::tick now, sim::tick srtt = sim::from_ms(40),
               double ce = 0.0)
{
    ack_sample s;
    s.newly_acked = bytes;
    s.rtt = srtt;
    s.srtt = srtt;
    s.ce_fraction = ce;
    s.now = now;
    s.delivery_rate_bps = 10e6;
    return s;
}

}  // namespace

TEST(factory, builds_all_algorithms)
{
    for (const char* name : {"reno", "cubic", "prague", "bbr", "bbr2"}) {
        auto cc = make_cc(name, kMss);
        ASSERT_NE(cc, nullptr);
        EXPECT_EQ(cc->name(), name);
        EXPECT_GT(cc->cwnd(), 0u);
    }
    EXPECT_THROW(make_cc("vegas", kMss), std::invalid_argument);
}

TEST(factory, unknown_name_error_lists_valid_algorithms)
{
    try {
        make_cc("vegas", kMss);
        FAIL() << "make_cc must reject unknown algorithm names";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("vegas"), std::string::npos) << msg;
        for (const char* name : {"reno", "cubic", "prague", "bbr", "bbr2"})
            EXPECT_NE(msg.find(name), std::string::npos)
                << "error must list valid name \"" << name << "\": " << msg;
    }
}

// --- shared ECN feedback arithmetic (transport/ecn_feedback.h) ---------------

TEST(ecn_feedback, first_report_establishes_baseline_without_spurious_delta)
{
    // The AccECN ACE field starts at 5 per the draft; a fresh tracker must
    // not turn that initial value into a phantom CE burst.
    ecn_counter_tracker t(3);
    EXPECT_EQ(t.update(5), 0u);
    EXPECT_EQ(t.update(6), 1u);
    EXPECT_EQ(t.update(6), 0u);
}

TEST(ecn_feedback, ace_3bit_counter_wraps)
{
    ecn_counter_tracker t(3);
    t.update(6);
    EXPECT_EQ(t.update(1), 3u);  // 6 -> 7,0,1 across the 3-bit wrap
    EXPECT_EQ(t.update(0), 7u);  // full-cycle-minus-one wrap
}

TEST(ecn_feedback, accecn_24bit_byte_counter_wraps)
{
    ecn_counter_tracker t(24);
    t.update(0xfffffa);
    EXPECT_EQ(t.update(0x000010), 0x16u);  // 6 bytes to the wrap + 0x10 past it
    // Values above 24 bits are masked like the wire field would be.
    t.update(0);
    EXPECT_EQ(t.update(0x1000005), 5u);
}

TEST(ecn_feedback, quic_64bit_counters_do_not_wrap_in_practice)
{
    ecn_counter_tracker t(64);
    t.update(1ull << 40);
    EXPECT_EQ(t.update((1ull << 40) + 123), 123u);
}

TEST(ecn_feedback, ce_fraction_clamps_and_handles_zero_acked)
{
    EXPECT_DOUBLE_EQ(ce_fraction(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(ce_fraction(7, 0), 1.0);   // CE progress, no ack progress
    EXPECT_DOUBLE_EQ(ce_fraction(500, 1000), 0.5);
    EXPECT_DOUBLE_EQ(ce_fraction(2000, 1000), 1.0);  // skew can't exceed 100%
}

TEST(factory, ecn_codepoints_match_l4s_identifiers)
{
    EXPECT_EQ(make_cc("prague", kMss)->data_ecn(), net::ecn::ect1);
    EXPECT_EQ(make_cc("bbr2", kMss)->data_ecn(), net::ecn::ect1);
    EXPECT_EQ(make_cc("cubic", kMss)->data_ecn(), net::ecn::ect0);
    EXPECT_EQ(make_cc("reno", kMss)->data_ecn(), net::ecn::ect0);
    EXPECT_TRUE(make_cc("prague", kMss)->uses_accecn());
    EXPECT_TRUE(make_cc("bbr2", kMss)->uses_accecn());
    EXPECT_FALSE(make_cc("cubic", kMss)->uses_accecn());
}

TEST(reno_law, aimd)
{
    reno cc(kMss);
    const auto w0 = cc.cwnd();
    // Exit slow start.
    cc.on_loss(0);
    const auto w1 = cc.cwnd();
    EXPECT_EQ(w1, w0 / 2);
    // One RTT of ACKs adds ~1 MSS.
    std::uint64_t acked = 0;
    sim::tick t = 0;
    while (acked < w1) {
        cc.on_ack(ack(kMss, t));
        acked += kMss;
        t += sim::from_ms(1);
    }
    EXPECT_NEAR(static_cast<double>(cc.cwnd()), static_cast<double>(w1 + kMss),
                static_cast<double>(kMss));
}

TEST(reno_law, rto_collapses_to_one_mss)
{
    reno cc(kMss);
    cc.on_rto(0);
    EXPECT_EQ(cc.cwnd(), kMss);
}

TEST(cubic_law, beta_is_point_seven)
{
    cubic cc(kMss);
    cc.on_ack(ack(100 * kMss, 0));  // slow start inflate
    const auto before = cc.cwnd();
    cc.on_loss(sim::from_ms(1));
    EXPECT_NEAR(static_cast<double>(cc.cwnd()), 0.7 * static_cast<double>(before),
                static_cast<double>(kMss));
}

TEST(cubic_law, concave_recovery_toward_wmax)
{
    cubic cc(kMss);
    cc.on_ack(ack(200 * kMss, 0));
    const auto w_max = cc.cwnd();
    cc.on_loss(sim::from_ms(1));
    // Feed ACKs for a few seconds; growth should approach W_max and flatten.
    sim::tick t = sim::from_ms(1);
    std::uint64_t prev = cc.cwnd();
    std::uint64_t max_delta_late = 0, max_delta_early = 0;
    for (int i = 0; i < 4000; ++i) {
        t += sim::from_ms(1);
        cc.on_ack(ack(kMss, t));
        const std::uint64_t d = cc.cwnd() - prev;
        if (i < 400) max_delta_early = std::max(max_delta_early, d);
        if (i > 3000) max_delta_late = std::max(max_delta_late, d);
        prev = cc.cwnd();
    }
    EXPECT_LE(cc.cwnd(), w_max + 40ull * kMss);
    EXPECT_GE(max_delta_early, max_delta_late) << "growth flattens near W_max (concave)";
}

TEST(prague_law, alpha_tracks_ce_fraction)
{
    prague cc(kMss);
    sim::tick t = 0;
    // Rounds with a steady 30% CE fraction.
    for (int i = 0; i < 200; ++i) {
        t += sim::from_ms(5);
        cc.on_ack(ack(kMss, t, sim::from_ms(40), 0.3));
    }
    EXPECT_NEAR(cc.alpha(), 0.3, 0.1);
}

TEST(prague_law, md_is_alpha_over_two_once_per_rtt)
{
    prague cc(kMss);
    sim::tick t = 0;
    // Converge alpha near 1 with fully marked rounds.
    for (int i = 0; i < 400; ++i) {
        t += sim::from_ms(5);
        cc.on_ack(ack(kMss, t, sim::from_ms(40), 1.0));
    }
    const double alpha = cc.alpha();
    EXPECT_GT(alpha, 0.8);
    const auto before = cc.cwnd();
    t += sim::from_ms(41);  // force a new round with CE
    cc.on_ack(ack(kMss, t, sim::from_ms(40), 1.0));
    EXPECT_LT(cc.cwnd(), before);
    EXPECT_GT(cc.cwnd(), static_cast<std::uint64_t>(before * (1.0 - alpha / 2.0) * 0.8));
}

TEST(prague_law, clean_rounds_return_to_additive_increase)
{
    prague cc(kMss);
    sim::tick t = 0;
    for (int i = 0; i < 100; ++i) {
        t += sim::from_ms(5);
        cc.on_ack(ack(kMss, t, sim::from_ms(40), 1.0));
    }
    const auto low = cc.cwnd();
    for (int i = 0; i < 2000; ++i) {
        t += sim::from_ms(5);
        cc.on_ack(ack(kMss, t, sim::from_ms(40), 0.0));
    }
    EXPECT_GT(cc.cwnd(), low) << "AI resumes immediately after MD (the L4S sawtooth)";
}

TEST(bbr_law, startup_finds_bandwidth_then_settles)
{
    bbr cc(kMss, false);
    sim::tick t = 0;
    for (int i = 0; i < 2000; ++i) {
        t += sim::from_ms(2);
        ack_sample s = ack(kMss, t, sim::from_ms(40));
        s.delivery_rate_bps = 20e6;
        s.in_flight = cc.cwnd() / 2;
        cc.on_ack(s);
    }
    EXPECT_NEAR(cc.bandwidth_bps(), 20e6, 2e6);
    // cwnd ~ cwnd_gain * BDP = 2 * 20e6/8 * 0.04 = 200 kB.
    EXPECT_GT(cc.cwnd(), 100'000u);
    EXPECT_LT(cc.cwnd(), 500'000u);
}

TEST(bbr_law, v1_ignores_loss_and_ecn)
{
    bbr cc(kMss, false);
    sim::tick t = 0;
    for (int i = 0; i < 500; ++i) {
        t += sim::from_ms(2);
        ack_sample s = ack(kMss, t);
        s.in_flight = cc.cwnd() / 2;
        cc.on_ack(s);
    }
    const auto before = cc.cwnd();
    cc.on_loss(t);
    cc.on_ecn(t);
    EXPECT_EQ(cc.cwnd(), before);
}

TEST(bbr_law, v2_reduces_bound_on_ce)
{
    bbr cc(kMss, true);
    sim::tick t = 0;
    for (int i = 0; i < 1000; ++i) {
        t += sim::from_ms(2);
        ack_sample s = ack(kMss, t);
        s.in_flight = cc.cwnd() / 2;
        cc.on_ack(s);
    }
    const auto before = cc.cwnd();
    // Two rounds of heavy CE.
    for (int i = 0; i < 80; ++i) {
        t += sim::from_ms(2);
        ack_sample s = ack(kMss, t, sim::from_ms(40), 0.8);
        s.in_flight = cc.cwnd() / 2;
        cc.on_ack(s);
    }
    EXPECT_LT(cc.cwnd(), before) << "BBRv2 responds to AccECN CE (DCTCP-like)";
}

TEST(bbr_law, v2_loss_shrinks_inflight_hi)
{
    bbr cc(kMss, true);
    sim::tick t = 0;
    for (int i = 0; i < 500; ++i) {
        t += sim::from_ms(2);
        ack_sample s = ack(kMss, t);
        s.in_flight = cc.cwnd() / 2;
        cc.on_ack(s);
    }
    const auto before = cc.cwnd();
    cc.on_loss(t);
    EXPECT_LE(cc.cwnd(), before);
}
