// Property/fuzz tests for the DCI trace codec (chan/trace_io): random byte
// soup, truncated inputs, out-of-order timestamps and absurd MCS/PRB
// values must never crash or hang — they either parse with clamping or
// throw a trace_parse_error naming the offending line/record. Valid traces
// round-trip exactly through both the CSV and the binary codec.
#include <gtest/gtest.h>

#include <string>

#include "chan/trace_io.h"
#include "sim/rng.h"

using namespace l4span;
using namespace l4span::chan;

namespace {

trace_data random_trace(sim::rng& rng)
{
    trace_data t;
    t.name = "fuzz";
    const int n = static_cast<int>(rng.uniform_int(1, 200));
    sim::tick ts = rng.uniform_int(0, 1000) * sim::k_microsecond;
    for (int i = 0; i < n; ++i) {
        dci_record r;
        r.timestamp = ts;
        ts += rng.uniform_int(1, 5000) * sim::k_microsecond;
        r.mcs = static_cast<int>(rng.uniform_int(-1, k_num_mcs - 1));
        r.prbs = static_cast<int>(rng.uniform_int(0, k_max_trace_prbs));
        r.tbs = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
        t.records.push_back(r);
    }
    if (rng.bernoulli(0.5))
        t.duration = t.records.back().timestamp +
                     rng.uniform_int(1, 1000) * sim::k_microsecond;
    return t;
}

// The invariants the parser guarantees on anything it accepts.
void check_clamped(const trace_data& t)
{
    sim::tick prev = -1;
    for (const auto& r : t.records) {
        EXPECT_GT(r.timestamp, prev);
        prev = r.timestamp;
        EXPECT_GE(r.mcs, -1);
        EXPECT_LT(r.mcs, k_num_mcs);
        EXPECT_GE(r.prbs, 0);
        EXPECT_LE(r.prbs, k_max_trace_prbs);
    }
    EXPECT_FALSE(t.records.empty());
}

}  // namespace

TEST(trace_fuzz, csv_roundtrip_is_exact)
{
    sim::rng rng(20260726);
    for (int i = 0; i < 200; ++i) {
        const trace_data t = random_trace(rng);
        const trace_data back = parse_trace_csv(to_trace_csv(t), t.name);
        ASSERT_EQ(back.records, t.records) << "iter " << i;
        EXPECT_EQ(back.duration, t.duration) << "iter " << i;
        EXPECT_EQ(back.name, t.name);
    }
}

TEST(trace_fuzz, binary_roundtrip_is_exact)
{
    sim::rng rng(42);
    for (int i = 0; i < 200; ++i) {
        const trace_data t = random_trace(rng);
        const auto bytes = to_trace_binary(t);
        const trace_data back = parse_trace_binary(bytes.data(), bytes.size(), t.name);
        ASSERT_EQ(back.records, t.records) << "iter " << i;
        EXPECT_EQ(back.duration, t.duration) << "iter " << i;
    }
}

TEST(trace_fuzz, random_byte_soup_never_crashes_either_parser)
{
    sim::rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(0, 2000));
        std::string soup(n, '\0');
        for (auto& c : soup) {
            // Bias toward CSV-looking bytes so line parsing gets exercised.
            c = rng.bernoulli(0.7)
                    ? static_cast<char>("0123456789,-\n #"[rng.uniform_int(0, 14)])
                    : static_cast<char>(rng.uniform_int(0, 255));
        }
        try {
            check_clamped(parse_trace_csv(soup, "soup"));
        } catch (const trace_parse_error& e) {
            EXPECT_NE(std::string(e.what()).find("soup"), std::string::npos);
        }
        try {
            check_clamped(parse_trace_binary(
                reinterpret_cast<const std::uint8_t*>(soup.data()), soup.size(),
                "soup"));
        } catch (const trace_parse_error&) {
        }
    }
    SUCCEED();
}

TEST(trace_fuzz, truncated_serializations_never_crash)
{
    sim::rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const trace_data t = random_trace(rng);
        const std::string csv = to_trace_csv(t);
        const auto bin = to_trace_binary(t);
        const auto csv_cut = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(csv.size())));
        const auto bin_cut = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bin.size())));
        try {
            check_clamped(parse_trace_csv(csv.substr(0, csv_cut), "cut"));
        } catch (const trace_parse_error&) {
        }
        try {
            check_clamped(parse_trace_binary(bin.data(), bin_cut, "cut"));
        } catch (const trace_parse_error&) {
        }
    }
    SUCCEED();
}

TEST(trace_fuzz, out_of_order_timestamps_name_the_offending_line)
{
    const char* csv =
        "timestamp_us,mcs,prbs,tbs_bytes\n"
        "0,10,51,1000\n"
        "1000,11,51,1000\n"
        "500,12,51,1000\n";  // line 4 rewinds
    try {
        parse_trace_csv(csv, "ooo");
        FAIL() << "out-of-order timestamps must throw";
    } catch (const trace_parse_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("strictly increasing"), std::string::npos) << msg;
    }
}

TEST(trace_fuzz, malformed_fields_name_the_offending_line)
{
    try {
        parse_trace_csv("0,10,51,1000\n500,banana,51,1000\n", "bad");
        FAIL() << "non-numeric field must throw";
    } catch (const trace_parse_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
    }
    EXPECT_THROW(parse_trace_csv("1,2\n", "short"), trace_parse_error);
    EXPECT_THROW(parse_trace_csv("1,2,3,4,5\n", "long"), trace_parse_error);
    EXPECT_THROW(parse_trace_csv("-5,2,3,4\n", "neg"), trace_parse_error);
    EXPECT_THROW(parse_trace_csv("", "empty"), trace_parse_error);
    EXPECT_THROW(parse_trace_csv("# only comments\n", "comments"), trace_parse_error);
}

TEST(trace_fuzz, absurd_mcs_and_prb_values_are_clamped)
{
    const trace_data t = parse_trace_csv(
        "0,999,99999,1000\n"
        "1000,-999,-7,2000\n",
        "absurd");
    ASSERT_EQ(t.records.size(), 2u);
    EXPECT_EQ(t.records[0].mcs, k_num_mcs - 1);
    EXPECT_EQ(t.records[0].prbs, k_max_trace_prbs);
    EXPECT_EQ(t.records[1].mcs, -1);
    EXPECT_EQ(t.records[1].prbs, 0);
}

TEST(trace_fuzz, binary_header_diagnostics)
{
    const trace_data t = parse_trace_csv("0,10,51,1000\n", "one");
    auto bytes = to_trace_binary(t);
    // Flip the magic.
    auto bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_THROW(parse_trace_binary(bad_magic.data(), bad_magic.size(), "m"),
                 trace_parse_error);
    // Declare more records than the payload holds.
    auto bad_count = bytes;
    bad_count[8] = 200;
    EXPECT_THROW(parse_trace_binary(bad_count.data(), bad_count.size(), "c"),
                 trace_parse_error);
    // Unsupported version.
    auto bad_version = bytes;
    bad_version[4] = 9;
    EXPECT_THROW(parse_trace_binary(bad_version.data(), bad_version.size(), "v"),
                 trace_parse_error);
    // A count so large that count * record_size wraps to the payload size
    // (2^61 * 24 ≡ 0 mod 2^64 against an empty payload) must still be a
    // diagnostic, not a std::length_error out of vector::reserve.
    std::vector<std::uint8_t> wrap_count(bytes.begin(), bytes.begin() + 24);
    for (int i = 0; i < 8; ++i)
        wrap_count[8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((std::uint64_t{1} << 61) >> (8 * i));
    EXPECT_THROW(parse_trace_binary(wrap_count.data(), wrap_count.size(), "w"),
                 trace_parse_error);
}
